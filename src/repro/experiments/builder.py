"""Network builder: assemble a full testbed (APs, controller, clients).

One call to :func:`build_network` reproduces the deployment of Fig. 9 --
eight roadside APs with parabolic antennas on a shared Ethernet backhaul,
a controller, and any number of vehicular clients -- in either WGTT or
Enhanced-802.11r mode.  Both modes share every substrate (PHY, MAC,
queues, transport); only the control plane differs, so measured deltas
isolate the paper's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.ap import ApParams, WgttAp
from ..core.association import pre_associate
from ..core.baseline import (
    BaselineAp,
    BaselineController,
    BaselinePolicyParams,
    Enhanced80211rPolicy,
    baseline_ap_params,
)
from ..core.client import ClientParams, MobileClient
from ..core.controller import ControllerParams, WgttController
from ..core.ha import ControllerCluster, HaParams, StandbyController, coerce_ha
from ..faults import FaultInjector, FaultScenario, coerce_scenario
from ..invariants import InvariantSuite
from ..mac.medium import Medium, MediumParams
from ..mobility.trajectory import RoadLayout, Trajectory
from ..net.addressing import NodeIdAllocator
from ..net.ethernet import Backhaul, BackhaulParams
from ..net.packet import Packet
from ..phy.antenna import ParabolicAntenna
from ..phy.channel import Link, RadioParams
from ..policies import (
    PolicyContext,
    PolicySpec,
    coerce_policy,
    create_policy,
    policy_class,
)
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder

__all__ = ["ExperimentConfig", "Network", "build_network"]


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one experimental condition."""

    mode: str = "wgtt"  # "wgtt" | "baseline"
    road: RoadLayout = field(default_factory=RoadLayout)
    seed: int = 0
    radio_params: RadioParams = field(default_factory=RadioParams)
    ap_params: Optional[ApParams] = None
    controller_params: ControllerParams = field(default_factory=ControllerParams)
    policy_params: BaselinePolicyParams = field(default_factory=BaselinePolicyParams)
    medium_params: MediumParams = field(default_factory=MediumParams)
    backhaul_params: BackhaulParams = field(default_factory=BackhaulParams)
    client_params: Optional[ClientParams] = None
    #: One-way latency between the local content server and the controller.
    server_latency_s: float = 1e-3
    #: Trace kinds to retain in memory (None = keep everything).
    trace_kinds: Optional[set] = None
    #: Per-AP 2.4 GHz channel assignment (None = all on channel 11, the
    #: testbed setting).  The multi-channel discussion of paper section 7:
    #: clients stay tuned to channel 11, so APs on other channels cannot
    #: serve or overhear them.
    channel_plan: Optional[List[int]] = None
    #: Fault-injection scenario (a :class:`repro.faults.FaultScenario`, a
    #: dict, or its JSON string).  Strictly opt-in: None leaves every
    #: fault code path unreachable and runs bit-identical to before the
    #: fault subsystem existed.
    fault_scenario: Optional[FaultScenario] = None
    #: Cap on stored trace records (ring buffer; None = unbounded).
    trace_max_records: Optional[int] = None
    #: Handover policy for the WGTT controller (a
    #: :class:`repro.policies.PolicySpec`, a dict, a registry name, or
    #: its JSON string).  None runs the paper's default
    #: ``wgtt-max-median`` selection, bit-identical to before the policy
    #: framework existed.  Baseline mode has its own client-side roaming
    #: policy (``policy_params``) and rejects this knob.
    policy: Optional[PolicySpec] = None
    #: Controller high availability (a :class:`repro.core.ha.HaParams`, a
    #: dict, or ``True`` for the defaults).  Strictly opt-in: None builds
    #: no standby, starts no heartbeats, and leaves every HA code path
    #: unreachable, so default drives stay bit-identical to the golden
    #: digests.
    ha: Optional[HaParams] = None
    #: Arm the :class:`repro.invariants.InvariantSuite` runtime monitors
    #: (no-duplicate-delivery, bounded reordering, index monotonicity,
    #: single-serving-AP) on every built component.
    check_invariants: bool = False
    #: City-scale scenario (a :class:`repro.city.CityConfig`, a dict, or
    #: its JSON string).  Strictly opt-in: None builds the single-road
    #: testbed exactly as before; a value routes :func:`build_network`
    #: to :class:`repro.city.CityNetwork` (road grid, per-segment
    #: controllers, sharded medium).  ``road``/``channel_plan`` are
    #: ignored in city mode (the grid supplies both).
    city: Optional[object] = None

    def __post_init__(self) -> None:
        if self.mode not in ("wgtt", "baseline"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.city is not None:
            # Imported lazily: repro.city depends on this module.
            from ..city.config import coerce_city

            self.city = coerce_city(self.city)
            if self.mode != "wgtt":
                raise ValueError("city drives support wgtt mode only")
            if self.fault_scenario is not None or self.ha is not None:
                raise ValueError(
                    "city drives do not support fault_scenario/ha yet"
                )
        if self.fault_scenario is not None:
            self.fault_scenario = coerce_scenario(self.fault_scenario)
        if self.policy is not None:
            self.policy = coerce_policy(self.policy)
            if self.mode != "wgtt":
                raise ValueError(
                    "policy applies to the WGTT controller only; baseline "
                    "mode roams client-side via policy_params"
                )
            policy_class(self.policy.name)  # fail fast on unknown names
        if self.ha is not None:
            self.ha = coerce_ha(self.ha)
            if self.ha is not None and self.mode != "wgtt":
                raise ValueError(
                    "ha applies to the WGTT controller only; the baseline "
                    "has no checkpoint/failover protocol to run"
                )


class Network:
    """A built testbed instance."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self.sim = Simulator()
        self.rng = np.random.default_rng(config.seed)
        self.trace = TraceRecorder(keep_kinds=config.trace_kinds,
                                   max_records=config.trace_max_records)
        self.medium = Medium(
            self.sim, np.random.default_rng([config.seed, 1]),
            trace=self.trace, params=config.medium_params,
        )
        self.backhaul = Backhaul(
            self.sim, np.random.default_rng([config.seed, 2]),
            params=config.backhaul_params,
        )
        self.ids = NodeIdAllocator()
        self.controller_id = self.ids.allocate("infra")
        self.server_id = self.ids.allocate("infra")
        self.bssid = self.ids.allocate("infra")  # shared WGTT BSSID
        self.road = config.road
        self.aps: List = []
        self.clients: List[MobileClient] = []
        self._client_seq = 0

        if config.mode == "wgtt":
            controller_params = config.controller_params
            if (config.fault_scenario is not None
                    and controller_params.ap_liveness_timeout_s is None
                    and config.fault_scenario.liveness_timeout_s is not None):
                # Under fault injection the controller needs health
                # tracking to recover; an explicit ControllerParams
                # setting still wins.
                controller_params = replace(
                    controller_params,
                    ap_liveness_timeout_s=config.fault_scenario.liveness_timeout_s,
                )
            policy_factory = None
            if config.policy is not None:
                spec = config.policy
                policy_factory = lambda: create_policy(spec)  # noqa: E731
            self.controller = WgttController(
                self.sim, self.backhaul, self.controller_id,
                np.random.default_rng([config.seed, 3]),
                trace=self.trace, params=controller_params,
                policy_factory=policy_factory,
            )
            ap_params = config.ap_params or ApParams()
        else:
            self.controller = BaselineController(
                self.sim, self.backhaul, self.controller_id,
                np.random.default_rng([config.seed, 3]), trace=self.trace,
            )
            ap_params = config.ap_params or baseline_ap_params()

        ap_cls = WgttAp if config.mode == "wgtt" else BaselineAp
        for i in range(self.road.n_aps):
            position = self.road.ap_position(i)
            antenna = ParabolicAntenna.aimed_at(position, self.road.ap_aim_point(i))
            node_id = self.ids.allocate("ap")
            ap = ap_cls(
                self.sim, self.medium, self.backhaul, node_id,
                self.controller_id, position, antenna,
                np.random.default_rng([config.seed, 10 + i]),
                trace=self.trace,
                bssid=self.bssid if config.mode == "wgtt" else node_id,
                params=ap_params,
            )
            if config.channel_plan is not None:
                ap.radio.channel = config.channel_plan[i % len(config.channel_plan)]
            self.aps.append(ap)
            if config.mode == "wgtt":
                self.controller.add_ap(node_id)

        # HA layer (strictly opt-in; armed before the fault injector so a
        # scheduled controller_crash finds the heartbeat machinery running).
        self.standby: Optional[StandbyController] = None
        self.cluster: Optional[ControllerCluster] = None
        #: Downlink entry point bound once at build time: the cluster (so
        #: server traffic follows a failover) or the plain controller.
        self._downlink_entry = self.controller.send_downlink
        if config.mode == "wgtt" and config.ha is not None:
            ha = config.ha
            standby_id = None
            if ha.standby:
                standby_id = self.ids.allocate("infra")
                self.standby = StandbyController(
                    self.sim, self.backhaul, standby_id,
                    np.random.default_rng([config.seed, 4]),
                    trace=self.trace, params=controller_params,
                    policy_factory=policy_factory,
                )
                for ap in self.aps:
                    self.standby.add_ap(ap.node_id)
                self.cluster = ControllerCluster(self.controller, self.standby)
                self._downlink_entry = self.cluster.send_downlink
            self.controller.enable_ha(ha, standby_id=standby_id)
            if self.standby is not None:
                self.standby.enable_ha(ha)
            for ap in self.aps:
                # The AP gates its degraded tick on ha.ap_degraded itself;
                # local ESNR windows are fed either way so post-failover
                # DegradedReports carry real signal quality.
                ap.enable_ha(ha)

        self.invariants: Optional[InvariantSuite] = None
        if config.check_invariants:
            self.invariants = InvariantSuite()
            self.invariants.attach(self.controller, self.standby, *self.aps)

        self.fault_injector: Optional[FaultInjector] = None
        if config.fault_scenario is not None:
            self.fault_injector = FaultInjector(self, config.fault_scenario)
            self.fault_injector.arm()

    # --------------------------------------------------------------- clients
    def add_client(
        self,
        trajectory: Trajectory,
        params: Optional[ClientParams] = None,
        pre_associated: Optional[bool] = None,
    ) -> MobileClient:
        """Create a client on ``trajectory`` with links to every AP."""
        config = self.config
        self._client_seq += 1
        node_id = self.ids.allocate("client")
        client_params = params or config.client_params
        if client_params is None:
            # Baseline clients do not need CSI keepalives.
            probe = 0.02 if config.mode == "wgtt" else None
            client_params = ClientParams(probe_interval_s=probe)
        policy = None
        if config.mode == "baseline":
            policy = Enhanced80211rPolicy(config.policy_params)
        client = MobileClient(
            self.sim, self.medium, node_id, trajectory,
            np.random.default_rng([config.seed, 100 + self._client_seq]),
            trace=self.trace, params=client_params, policy=policy,
        )
        for i, ap in enumerate(self.aps):
            link = Link(
                ap_position=self.road.ap_position(i),
                ap_antenna=ap.radio.antenna,
                client_position_fn=trajectory.position,
                speed_mps=trajectory.speed_mps,
                rng=np.random.default_rng(
                    [config.seed, 1000 + 100 * self._client_seq + i]
                ),
                params=config.radio_params,
            )
            self.medium.add_link(ap.node_id, node_id, link)
        if pre_associated is None:
            pre_associated = config.mode == "wgtt"
        if pre_associated and config.mode == "wgtt":
            pre_associate(client, self.aps, self.bssid)
            signed = getattr(trajectory, "speed_signed_mps", trajectory.speed_mps)
            context = PolicyContext(
                ap_positions={
                    ap.node_id: self.road.ap_position(i)
                    for i, ap in enumerate(self.aps)
                },
                position_fn=trajectory.position,
                speed_mps=trajectory.speed_mps,
                heading_sign=-1.0 if signed < 0 else 1.0,
            )
            self.controller.add_client(node_id, context=context)
            if self.standby is not None:
                self.standby.add_client(node_id, context=context)
        if self.invariants is not None:
            self.invariants.attach(client)
        self.clients.append(client)
        return client

    # ---------------------------------------------------------------- server
    def server_send(self, packet: Packet) -> None:
        """Downlink entry: local content server -> controller (or cluster)."""
        self.sim.schedule(
            self.config.server_latency_s, self._downlink_entry, packet
        )

    def deliver_to_server(self, handler: Callable[[Packet, float], None]):
        """Wrap an uplink handler with the server-side latency."""

        def delayed(packet: Packet, _t: float) -> None:
            self.sim.schedule(
                self.config.server_latency_s,
                lambda: handler(packet, self.sim.now),
            )

        return delayed

    # --------------------------------------------------------------- queries
    def resilience_counters(self) -> Dict[str, int]:
        """Fault/HA bookkeeping for ``DriveSummary.resilience``.

        Empty for plain drives (no HA, no faults, no monitors) so default
        summaries stay byte-identical to pre-HA ones.
        """
        if (self.config.ha is None and self.fault_injector is None
                and self.invariants is None):
            return {}
        out: Dict[str, int] = {}
        if hasattr(self.controller, "resilience_counters"):
            out.update(self.controller.resilience_counters())
            if self.standby is not None:
                # Post-takeover activity (beats, reconciliations) lands on
                # the standby; report the cluster total.
                for key, value in self.standby.resilience_counters().items():
                    out[key] = out.get(key, 0) + value
        else:  # baseline controller under fault injection
            out["downlink_dropped_dead"] = self.controller.downlink_dropped_dead
        if self.cluster is not None:
            out["failovers"] = self.cluster.failovers
        if self.standby is not None:
            out["standby_takeovers"] = self.standby.takeovers
            out["checkpoints_received"] = self.standby.checkpoints_received
        out["degraded_entries"] = sum(
            getattr(ap, "degraded_entries", 0) for ap in self.aps
        )
        out["degraded_exits"] = sum(
            getattr(ap, "degraded_exits", 0) for ap in self.aps
        )
        out["degraded_handovers"] = sum(
            getattr(ap, "degraded_handovers", 0) for ap in self.aps
        )
        out["client_flushes"] = sum(
            getattr(ap, "flushes_applied", 0) for ap in self.aps
        )
        if self.fault_injector is not None:
            out["fault_events_applied"] = self.fault_injector.applied_events
        if self.invariants is not None:
            out.update(self.invariants.counters())
        return out

    def links_for_client(self, client: MobileClient) -> List[Link]:
        out = []
        for ap in self.aps:
            pair = self.medium.link_between(ap.node_id, client.node_id)
            if pair is not None:
                out.append(pair[0])
        return out

    def run(self, until: float) -> None:
        self.sim.run(until=until)


def build_network(config: Optional[ExperimentConfig] = None, **overrides):
    """Build a testbed network from a config (or keyword overrides).

    Returns a :class:`Network`, or a :class:`repro.city.CityNetwork`
    when ``config.city`` is set.
    """
    if config is None:
        config = ExperimentConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    if config.city is not None:
        from ..city.builder import CityNetwork

        return CityNetwork(config)
    return Network(config)
