"""High-level experiment runners.

These are the 'iperf3 + tcpdump' of the reproduction: attach transport
flows to a built network, run a drive, and package the measurements every
figure/table needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from ..core.client import MobileClient
from ..perf import PERF
from ..mobility.trajectory import (
    COVERAGE_ENTRY_OFFSET_M,
    LinearTrajectory,
    RoadLayout,
    StationaryTrajectory,
    Trajectory,
)
from ..transport.tcp import TcpReceiver, TcpSender
from ..transport.udp import UdpReceiver, UdpSender
from .builder import ExperimentConfig, Network, build_network
from .metrics import ServingTimeline, mean_throughput_mbps

__all__ = [
    "attach_udp_downlink",
    "attach_udp_uplink",
    "attach_tcp_downlink",
    "udp_deliveries",
    "tcp_deliveries",
    "DriveResult",
    "run_single_drive",
    "run_drive_summary",
    "static_trajectory",
]

_next_flow_id = [1]


def _alloc_flow_id() -> int:
    flow_id = _next_flow_id[0]
    _next_flow_id[0] += 1
    return flow_id


# ------------------------------------------------------------------- flows
def attach_udp_downlink(
    net: Network,
    client: MobileClient,
    rate_mbps: float,
    flow_id: Optional[int] = None,
) -> Tuple[UdpSender, UdpReceiver]:
    """Server -> client UDP CBR flow (the paper's iperf3 download)."""
    flow_id = flow_id if flow_id is not None else _alloc_flow_id()
    receiver = UdpReceiver(net.sim, flow_id, trace=net.trace)
    client.register_flow(flow_id, receiver.on_packet)
    sender = UdpSender(
        net.sim, net.server_send, src=net.server_id, dst=client.node_id,
        flow_id=flow_id, rate_mbps=rate_mbps,
    )
    return sender, receiver


def attach_udp_uplink(
    net: Network,
    client: MobileClient,
    rate_mbps: float,
    flow_id: Optional[int] = None,
) -> Tuple[UdpSender, UdpReceiver]:
    """Client -> server UDP CBR flow (uplink-diversity experiments)."""
    flow_id = flow_id if flow_id is not None else _alloc_flow_id()
    receiver = UdpReceiver(net.sim, flow_id, trace=net.trace)
    net.controller.register_uplink_handler(
        flow_id, net.deliver_to_server(receiver.on_packet)
    )
    sender = UdpSender(
        net.sim, client.uplink_send, src=client.node_id, dst=net.server_id,
        flow_id=flow_id, rate_mbps=rate_mbps,
    )
    return sender, receiver


def attach_tcp_downlink(
    net: Network,
    client: MobileClient,
    flow_id: Optional[int] = None,
    app_limit_bytes: Optional[int] = None,
) -> Tuple[TcpSender, TcpReceiver]:
    """Server -> client bulk TCP download, ACKs on the uplink path."""
    flow_id = flow_id if flow_id is not None else _alloc_flow_id()
    sender = TcpSender(
        net.sim, net.server_send, src=net.server_id, dst=client.node_id,
        flow_id=flow_id, app_limit_bytes=app_limit_bytes, trace=net.trace,
    )
    receiver = TcpReceiver(
        net.sim, client.uplink_send, src=client.node_id, dst=net.server_id,
        flow_id=flow_id, trace=net.trace,
    )
    client.register_flow(flow_id, receiver.on_packet)
    net.controller.register_uplink_handler(
        flow_id, net.deliver_to_server(sender.on_packet)
    )
    return sender, receiver


def udp_deliveries(receiver: UdpReceiver, packet_bytes: int) -> List[Tuple[float, int]]:
    """(time, bytes) delivery events of a UDP flow."""
    return [(t, packet_bytes) for (t, _seq) in receiver.deliveries]


def tcp_deliveries(receiver: TcpReceiver) -> List[Tuple[float, int]]:
    """(time, new in-order bytes) events of a TCP flow."""
    out = []
    prev = 0
    for t, rcv_nxt in receiver.progress:
        out.append((t, rcv_nxt - prev))
        prev = rcv_nxt
    return out


# ------------------------------------------------------------------- drives
def static_trajectory(road: RoadLayout) -> StationaryTrajectory:
    """Parked at the boresight of the middle AP (the 'static' bar)."""
    mid = road.n_aps // 2
    return StationaryTrajectory(road.ap_aim_point(mid))


@dataclass
class DriveResult:
    """Everything a figure needs from one drive."""

    net: Network
    client: MobileClient
    duration_s: float
    measure_t0: float
    measure_t1: float
    deliveries: List[Tuple[float, int]]
    throughput_mbps: float
    timeline: ServingTimeline
    sender: object = None
    receiver: object = None
    extras: Dict = field(default_factory=dict)

    @property
    def trace(self):
        return self.net.trace

    def summarize(self, **meta) -> "DriveSummary":  # noqa: F821
        """Extract a picklable :class:`~repro.orchestration.summary.DriveSummary`.

        The summary carries everything the figures consume (throughput,
        switch timeline, trace counters) and none of the live simulation
        objects, so it can cross process boundaries and persist in the
        sweep result cache.  ``meta`` passes through job identity fields
        such as ``mode`` / ``seed`` / ``wall_clock_s``.
        """
        from ..orchestration.summary import DriveSummary

        return DriveSummary.from_drive_result(self, **meta)


def run_single_drive(
    mode: str = "wgtt",
    speed_mph: float = 15.0,
    traffic: str = "tcp",
    udp_rate_mbps: float = 20.0,
    seed: int = 0,
    road: Optional[RoadLayout] = None,
    duration_s: Optional[float] = None,
    warmup_s: float = 0.5,
    config: Optional[ExperimentConfig] = None,
    trajectory: Optional[Trajectory] = None,
    city=None,
    **config_overrides,
) -> DriveResult:
    """One client transiting the AP array with a bulk download.

    ``traffic`` is ``"tcp"`` or ``"udp"``.  ``speed_mph == 0`` parks the
    client at the middle AP (the static case of Fig. 13).  ``city`` (a
    :class:`repro.city.CityConfig`, dict, or JSON string) runs a fleet
    drive over a road grid instead; ``speed_mph``/``road``/``trajectory``
    are then ignored (the city spec carries its own speed and geometry).
    """
    if city is not None:
        from ..city.runner import run_city_drive

        config = ExperimentConfig(
            mode=mode, seed=seed, city=city, **config_overrides
        )
        return run_city_drive(
            config, traffic=traffic, udp_rate_mbps=udp_rate_mbps,
            duration_s=duration_s, warmup_s=warmup_s,
        )
    road = road or RoadLayout()
    if config is None:
        config = ExperimentConfig(
            mode=mode, road=road, seed=seed, **config_overrides
        )
    net = build_network(config)
    traffic_start_s = 0.050
    if trajectory is None:
        if speed_mph <= 0:
            trajectory = static_trajectory(road)
            if duration_s is None:
                duration_s = 10.0
        else:
            trajectory = LinearTrajectory.drive_through(road, speed_mph)
            # Start the flow once the client is inside coverage (~8 m
            # before the first AP) -- the paper's drives begin with the
            # client already connected.
            entry_x = min(road.ap_x) - COVERAGE_ENTRY_OFFSET_M
            traffic_start_s = max(
                traffic_start_s, (entry_x - trajectory.start_x) / trajectory.speed_mps
            )
    if duration_s is None:
        duration_s = trajectory.transit_duration(road)
    client = net.add_client(trajectory)

    if traffic == "tcp":
        sender, receiver = attach_tcp_downlink(net, client)
        start = lambda: sender.start()
        deliveries_fn = lambda: tcp_deliveries(receiver)
    elif traffic == "udp":
        sender, receiver = attach_udp_downlink(net, client, udp_rate_mbps)
        start = lambda: sender.start()
        deliveries_fn = lambda: udp_deliveries(receiver, sender.packet_bytes)
    else:
        raise ValueError(f"unknown traffic type {traffic!r}")

    net.sim.schedule(traffic_start_s, start)
    with PERF.timer("drive.run"):
        net.run(until=duration_s)
    PERF.count("drive.events", net.sim.events_fired)

    t0, t1 = traffic_start_s + warmup_s, duration_s
    deliveries = deliveries_fn()
    timeline = ServingTimeline.from_trace(net.trace, client.node_id)
    return DriveResult(
        net=net,
        client=client,
        duration_s=duration_s,
        measure_t0=t0,
        measure_t1=t1,
        deliveries=deliveries,
        throughput_mbps=mean_throughput_mbps(deliveries, t0, t1),
        timeline=timeline,
        sender=sender,
        receiver=receiver,
    )


def run_drive_summary(
    mode: str = "wgtt",
    speed_mph: float = 15.0,
    traffic: str = "tcp",
    udp_rate_mbps: float = 20.0,
    seed: int = 0,
    **kwargs,
) -> "DriveSummary":  # noqa: F821
    """Run one drive and return only its picklable summary.

    This is the worker-side path of the sweep orchestration: the live
    ``Network`` is built, driven, summarised, and discarded inside one
    process, so nothing unpicklable escapes.
    """
    from time import perf_counter

    from ..policies import DEFAULT_POLICY_NAME, coerce_policy

    t0 = perf_counter()
    result = run_single_drive(
        mode=mode, speed_mph=speed_mph, traffic=traffic,
        udp_rate_mbps=udp_rate_mbps, seed=seed, **kwargs,
    )
    policy = kwargs.get("policy")
    if policy is None and kwargs.get("config") is not None:
        policy = kwargs["config"].policy
    if policy is not None:
        policy_label = coerce_policy(policy).label()
    else:
        policy_label = DEFAULT_POLICY_NAME if mode == "wgtt" else ""
    return result.summarize(
        mode=mode, speed_mph=speed_mph, traffic=traffic,
        udp_rate_mbps=udp_rate_mbps, seed=seed,
        wall_clock_s=perf_counter() - t0,
        policy=policy_label,
    )
