"""Runtime invariant monitors.

"The network recovered" is usually a throughput eyeball; this package
turns it into checked properties.  An :class:`InvariantSuite` is armed by
the builder (``ExperimentConfig(check_invariants=True)`` or
``cli drive --check-invariants``) and wired into the components through
direct hooks -- every hook site is guarded by ``if self.invariants is not
None``, so an unarmed run executes not a single extra instruction and
no-fault drives stay bit-identical to the golden digests.

Monitored properties (the WGTT correctness contract, section 3 of the
paper, extended across the HA layer's failover boundary):

* **No duplicate delivery** -- a downlink packet (identified by its
  ``uid``, which every per-AP ring clone shares) reaches the client at
  most once, even across a controller failover or a degraded-mode
  handover.
* **Bounded reordering** -- UDP flow sequence numbers never regress by
  more than a configurable window (a switch legitimately reorders by
  about one NIC queue's worth; unbounded regression means a ring
  replayed history).
* **Cyclic-queue index monotonicity** -- within one controller epoch the
  12-bit index is assigned strictly sequentially mod 2^12.
* **Single serving AP** -- at any instant at most one live AP holds
  ``serving=True`` for a client.

Violations are collected (up to a cap), not raised at the fault site, so
one broken run reports every property it broke; call
:meth:`InvariantSuite.assert_ok` at the end of the drive.
"""

from .monitors import InvariantSuite, InvariantViolation

__all__ = ["InvariantSuite", "InvariantViolation"]
