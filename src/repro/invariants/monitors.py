"""The invariant monitors themselves (see the package docstring).

The suite is deliberately hook-based rather than trace-based: new trace
kinds or fields would perturb the golden drive digests, while a hook that
is ``None`` by default costs one attribute test only in the runs that arm
it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.cyclic_queue import INDEX_MODULO

__all__ = ["InvariantSuite", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """One or more runtime invariants were violated during a drive."""


class InvariantSuite:
    """Collects evidence from component hooks and judges the invariants.

    Parameters
    ----------
    reorder_window:
        Maximum tolerated UDP sequence regression.  A legitimate switch
        reorders by roughly one driver+NIC queue's worth of packets
        (~230 at the defaults); the default leaves headroom for a
        failover-boundary switch without tolerating a ring replay.
    max_violations:
        Cap on stored violation messages (counting continues past it).
    """

    def __init__(self, reorder_window: int = 512, max_violations: int = 64):
        self.reorder_window = reorder_window
        self.max_violations = max_violations
        self.violations: List[str] = []
        self.violation_count = 0
        self.checks = 0
        #: client -> uids delivered to it (ring clones share the uid).
        self._delivered: Dict[int, Set[int]] = {}
        #: (client, flow) -> highest UDP seq delivered so far.
        self._max_seq: Dict[Tuple[int, int], int] = {}
        #: (client, epoch) -> last cyclic-queue index the controller assigned.
        self._last_index: Dict[Tuple[int, int], int] = {}
        #: client -> set of AP ids currently holding serving=True.
        self._serving: Dict[int, Set[int]] = {}

    # --------------------------------------------------------------- record
    def _violate(self, message: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(message)

    # ---------------------------------------------------------------- hooks
    def on_delivery(self, t: float, client: int, packet) -> None:
        """A downlink packet reached the client's flow layer."""
        self.checks += 1
        uids = self._delivered.setdefault(client, set())
        uid = packet.uid
        if uid in uids:
            self._violate(
                f"duplicate delivery at t={t:.6f}: client {client} received "
                f"uid={uid} (flow={packet.flow_id}, seq={packet.seq}) twice"
            )
        else:
            uids.add(uid)
        if packet.protocol == "udp" and packet.seq is not None:
            key = (client, packet.flow_id)
            prev = self._max_seq.get(key)
            if prev is not None and packet.seq < prev - self.reorder_window:
                self._violate(
                    f"reordering beyond window at t={t:.6f}: client {client} "
                    f"flow {packet.flow_id} seq {packet.seq} after {prev} "
                    f"(window={self.reorder_window})"
                )
            if prev is None or packet.seq > prev:
                self._max_seq[key] = packet.seq

    def on_index_assigned(self, t: float, client: int, epoch: int,
                          index: int) -> None:
        """The controller stamped a downlink packet with a 12-bit index."""
        self.checks += 1
        key = (client, epoch)
        last = self._last_index.get(key)
        if last is not None and index != (last + 1) % INDEX_MODULO:
            self._violate(
                f"index monotonicity broken at t={t:.6f}: client {client} "
                f"epoch {epoch} assigned {index} after {last} "
                f"(expected {(last + 1) % INDEX_MODULO})"
            )
        self._last_index[key] = index

    def on_index_adopted(self, t: float, client: int, epoch: int,
                         index: int) -> None:
        """Reconciliation adopted a resume index: restart the sequence check.

        ``index`` is the *next* index to assign, so the checker expects
        ``index`` itself on the following assignment.
        """
        self._last_index[(client, epoch)] = (index - 1) % INDEX_MODULO

    def on_serving_start(self, t: float, ap: int, client: int) -> None:
        """AP ``ap`` began transmitting to ``client`` (serving=True)."""
        self.checks += 1
        serving = self._serving.setdefault(client, set())
        serving.add(ap)
        if len(serving) > 1:
            self._violate(
                f"multiple serving APs at t={t:.6f}: client {client} served "
                f"by {sorted(serving)}"
            )

    def on_serving_stop(self, t: float, ap: int, client: int) -> None:
        """AP ``ap`` stopped serving ``client`` (stop/flush/crash)."""
        serving = self._serving.get(client)
        if serving is not None:
            serving.discard(ap)

    # -------------------------------------------------------------- queries
    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def serving_aps(self, client: int) -> Set[int]:
        return set(self._serving.get(client, ()))

    def counters(self) -> Dict[str, int]:
        return {
            "invariant_checks": self.checks,
            "invariant_violations": self.violation_count,
        }

    def report(self) -> str:
        if self.ok:
            return f"invariants ok ({self.checks} checks)"
        lines = [
            f"{self.violation_count} invariant violation(s) "
            f"in {self.checks} checks:"
        ]
        lines += [f"  - {v}" for v in self.violations]
        if self.violation_count > len(self.violations):
            lines.append(
                f"  ... and {self.violation_count - len(self.violations)} more"
            )
        return "\n".join(lines)

    def assert_ok(self) -> None:
        """Raise :class:`InvariantViolation` when any property was broken."""
        if not self.ok:
            raise InvariantViolation(self.report())

    def attach(self, *components) -> None:
        """Set ``component.invariants = self`` on every argument."""
        for component in components:
            if component is not None:
                component.invariants = self
