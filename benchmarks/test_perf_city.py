"""City scaling benchmark: does capacity track city size?

Grows a road-grid city 8 -> 32 -> 128 APs at fixed density (4 APs and
8 vehicles per road segment) and measures aggregate simulation capacity
-- client x sim-seconds per CPU-second -- at each size.  With the
spatial link index and the per-(channel, cell) sharded collision
domain, per-client cost is set by *local* density, so capacity should
grow near-linearly with the fleet.

At the 128-AP point the same scenario is rerun with both subsystems
forced off (``sharded=False, link_index=False``): one global collision
domain plus the all-pairs AP x client link matrix -- exactly the
pre-subsystem architecture.  The sharded run must beat it by >= 3x.

The workload is uplink CBR ("udp-up"): every in-range AP overhears each
client frame and tunnels it to the controller (the paper's
uplink-diversity path).  Uplink keeps per-event work comparable across
arms -- on downlink, the control arm's city-wide AP-to-AP carrier sense
serializes traffic into fewer, larger A-MPDUs and hides the O(N) costs
this benchmark exists to expose.  Timing uses ``time.process_time()``
with the cyclic GC disabled during the timed region and the best of two
repeats per arm: gen-2 collections scan every live object and fire at
heap-size-dependent moments, which alone swings a run +-15 %, and the
repeat guards against cache/frequency noise on shared machines.  Writes
``BENCH_city.json`` at the repo root.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.city import CityConfig
from repro.city.runner import run_city_drive
from repro.experiments.builder import ExperimentConfig

from test_perf_phy import REPO_ROOT, bench_metadata

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_city.json")

SEED = 7
DURATION_S = 2.5
WARMUP_S = 0.25
APS_PER_SEGMENT = 4
VEHICLES_PER_SEGMENT = 8
CELL_M = 45.0
UDP_RATE_MBPS = 5.0

#: Fixed-density scaling series: (rows, cols) grids with 2, 8, and 32
#: road segments -> 8, 32, and 128 APs.
GRIDS = [(1, 3), (1, 9), (3, 7)]

#: Capacity at 128 APs must stay within this factor of the ideal (flat
#: per-client cost) line extrapolated from the 8-AP point.
MIN_SCALING_VS_IDEAL = 0.7

#: Sharded speedup over the forced single-shard arm at 128 APs.
MIN_SINGLE_SHARD_RATIO = 3.0


def _run_city(rows: int, cols: int, sharded: bool, link_index: bool,
              repeats: int = 2):
    n_segments = rows * (cols - 1) + cols * (rows - 1)
    city = CityConfig(
        rows=rows,
        cols=cols,
        aps_per_segment=APS_PER_SEGMENT,
        n_vehicles=n_segments * VEHICLES_PER_SEGMENT,
        cell_m=CELL_M,
        sharded=sharded,
        link_index=link_index,
    )
    config = ExperimentConfig(seed=SEED, city=city)
    cpu_s = wall_s = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        wall_t0 = time.perf_counter()
        cpu_t0 = time.process_time()
        # Deterministic: every repeat produces the identical drive, so
        # only the clocks differ and taking the min is sound.
        result = run_city_drive(
            config,
            traffic="udp-up",
            udp_rate_mbps=UDP_RATE_MBPS,
            duration_s=DURATION_S,
            warmup_s=WARMUP_S,
        )
        cpu_s = min(cpu_s, time.process_time() - cpu_t0)
        wall_s = min(wall_s, time.perf_counter() - wall_t0)
        gc.enable()
    return {
        "grid": f"{rows}x{cols}",
        "n_segments": n_segments,
        "n_aps": city.n_aps,
        "n_vehicles": city.n_vehicles,
        "sharded": sharded,
        "link_index": link_index,
        "cpu_s": cpu_s,
        "wall_s": wall_s,
        "capacity_client_sim_s_per_cpu_s": city.n_vehicles * DURATION_S / cpu_s,
        "fleet_mbps": result.extras["fleet_mbps"],
        "events_fired": result.net.sim.events_fired,
        "shard_stats": result.extras.get("shard_stats"),
    }


def _warmup():
    """Pay one-time lazy initialization (BER LUTs, steering matrices)
    outside the timed runs -- it would otherwise inflate the smallest
    series point and skew the scaling ratio."""
    city = CityConfig(rows=1, cols=2, aps_per_segment=2, n_vehicles=2,
                      cell_m=CELL_M)
    run_city_drive(ExperimentConfig(seed=SEED, city=city),
                   traffic="udp-up", udp_rate_mbps=UDP_RATE_MBPS,
                   duration_s=0.5, warmup_s=0.1)


def test_city_scaling_perf():
    _warmup()
    series = [_run_city(rows, cols, True, True) for rows, cols in GRIDS]
    for point in series:
        print(f"\n{point['grid']}: {point['n_aps']} APs, "
              f"{point['n_vehicles']} vehicles -> {point['cpu_s']:.1f}s CPU, "
              f"{point['capacity_client_sim_s_per_cpu_s']:.1f} "
              f"client-sim-s/cpu-s, {point['fleet_mbps']:.1f} Mb/s fleet")

    single = _run_city(*GRIDS[-1], False, False)
    big = series[-1]
    ratio = single["cpu_s"] / big["cpu_s"]
    scaling = (big["capacity_client_sim_s_per_cpu_s"]
               / series[0]["capacity_client_sim_s_per_cpu_s"])
    print(f"single-shard control: {single['cpu_s']:.1f}s CPU "
          f"({single['fleet_mbps']:.1f} Mb/s) -> sharded is {ratio:.2f}x "
          f"faster; capacity at 128 APs is {scaling:.2f}x the 8-AP point "
          f"(ideal 1.0)")

    bench = {
        "meta": bench_metadata(),
        "benchmark": "city_scaling",
        "seed": SEED,
        "duration_s": DURATION_S,
        "traffic": "udp-up",
        "udp_rate_mbps": UDP_RATE_MBPS,
        "aps_per_segment": APS_PER_SEGMENT,
        "vehicles_per_segment": VEHICLES_PER_SEGMENT,
        "cell_m": CELL_M,
        "scaling_series": series,
        "single_shard_control": single,
        "single_shard_ratio": ratio,
        "capacity_scaling_vs_8ap": scaling,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(bench, fh, indent=2)
        fh.write("\n")
    print(f"(wrote {os.path.basename(BENCH_PATH)})")

    # Every arm simulated and delivered traffic.
    for point in series + [single]:
        assert point["events_fired"] > 0
        assert point["fleet_mbps"] > 0.0
    # The subsystems did their job: the global collision domain
    # suppresses concurrency, so the control arm must not deliver more.
    assert single["fleet_mbps"] <= big["fleet_mbps"]
    # Near-linear capacity scaling 8 -> 128 APs at fixed density.
    assert scaling >= MIN_SCALING_VS_IDEAL, (
        f"capacity at 128 APs is {scaling:.2f}x the 8-AP point "
        f"(need >= {MIN_SCALING_VS_IDEAL})")
    # The scaling walls were real: spatial index + sharded medium beat
    # the pre-subsystem architecture by >= 3x at the 128-AP point.
    assert ratio >= MIN_SINGLE_SHARD_RATIO, (
        f"sharded run is only {ratio:.2f}x faster than the forced "
        f"single-shard control (need >= {MIN_SINGLE_SHARD_RATIO})")
