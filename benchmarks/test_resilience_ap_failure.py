"""Resilience: throughput dip and recovery after a mid-drive AP crash.

This is an extension experiment, not a paper figure: AP 3 (x = 22.5 m)
crashes at t = 5.3 s, just as the 15 mph client is about to be served by
it.  We report, for WGTT and the Enhanced 802.11r baseline:

* pre-crash throughput (the 2 s before the crash),
* the post-crash dip (worst 0.25 s bin in the 2 s after the crash),
* recovery time (first post-crash instant at which a bin returns to half
  of the pre-crash mean and the next bin holds it).

WGTT's controller evicts the dead AP from the candidate set on a CSI
liveness timeout and reroutes in-flight handshakes, so the client
re-attaches within a couple of hundred milliseconds; the baseline client
must detect the silence, re-scan, and re-associate over the air.
"""

import numpy as np

from repro.experiments import throughput_timeseries
from repro.faults import FaultScenario

from common import drive, fmt, print_table

CRASH_AP = 3
CRASH_T = 5.3
SPEED_MPH = 15.0
UDP_RATE = 20.0

#: Canonical JSON so the drive flows through the persistent result cache.
SCENARIO = FaultScenario.single_ap_crash(ap=CRASH_AP, at=CRASH_T).to_json()

BIN_S = 0.25
#: Recovery = back to this fraction of the pre-crash mean, sustained.
RECOVERY_FRACTION = 0.5


def crash_drive(mode):
    return drive(mode, SPEED_MPH, "udp", seed=7, udp_rate_mbps=UDP_RATE,
                 fault_scenario=SCENARIO)


def resilience_metrics(result):
    """(pre_mbps, dip_mbps, recovery_s) around the scripted crash."""
    t_end = result.duration_s
    centres, mbps = throughput_timeseries(
        result.deliveries, CRASH_T - 2.0, t_end, bin_s=BIN_S
    )
    pre = float(np.mean(mbps[centres < CRASH_T]))
    post = mbps[centres >= CRASH_T]
    post_centres = centres[centres >= CRASH_T]
    dip_window = post[: int(2.0 / BIN_S)]
    dip = float(dip_window.min()) if len(dip_window) else 0.0
    threshold = RECOVERY_FRACTION * pre
    recovery = float("inf")
    for i in range(len(post) - 1):
        if post[i] >= threshold and post[i + 1] >= threshold:
            recovery = float(post_centres[i] - BIN_S / 2.0 - CRASH_T)
            break
    return pre, dip, max(recovery, 0.0)


def test_resilience_wgtt_vs_baseline(benchmark):
    wgtt, base = benchmark.pedantic(
        lambda: (crash_drive("wgtt"), crash_drive("baseline")),
        rounds=1, iterations=1,
    )
    w_pre, w_dip, w_rec = resilience_metrics(wgtt)
    b_pre, b_dip, b_rec = resilience_metrics(base)
    print_table(
        f"Resilience: AP {CRASH_AP} crashes at t={CRASH_T}s ({SPEED_MPH:.0f} mph, "
        f"{UDP_RATE:.0f} Mb/s UDP)",
        ["mode", "pre-crash (Mb/s)", "dip (Mb/s)", "recovery (s)"],
        [
            ["wgtt", fmt(w_pre), fmt(w_dip), fmt(w_rec)],
            ["baseline", fmt(b_pre), fmt(b_dip), fmt(b_rec)],
        ],
    )
    # The drive completes and the crash is actually injected in both modes.
    for result in (wgtt, base):
        assert result.net.trace.count("fault_ap_crash") == 1
        assert not result.net.aps[CRASH_AP].alive
    # WGTT was delivering real throughput before the crash and recovers
    # within a bounded, sub-second window.
    assert w_pre > 5.0
    assert w_rec < 1.0
    # The baseline needs at least as long to re-associate as WGTT needs
    # to re-elect -- rapid switching is exactly what it lacks.
    assert w_rec <= b_rec


def test_resilience_wgtt_reattaches_to_live_ap(benchmark):
    result = benchmark.pedantic(lambda: crash_drive("wgtt"),
                                rounds=1, iterations=1)
    net = result.net
    dead = net.aps[CRASH_AP].node_id
    later = [r for r in net.trace.records("ap_switch") if r.time > CRASH_T]
    assert later and all(r["ap"] != dead for r in later)
    reattach = later[0].time - CRASH_T
    print(f"\nWGTT re-attach after crash: {1000 * reattach:.0f} ms "
          f"(evictions: {net.trace.count('ap_evicted')})")
    assert reattach < 1.0
