"""End-to-end drive perf benchmark: events/sec through the full stack.

Runs one short default drive (WGTT controller, TCP, fixed seed), records
wall clock, simulator events/sec, and the fast-path perf counters, and
writes ``BENCH_drive.json`` at the repo root.  No speed threshold is
asserted -- absolute drive speed varies with hardware -- only sanity
(the drive ran, delivered traffic, and the fast-path counters fired).
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments import run_single_drive
from repro.perf import PERF

from test_perf_phy import REPO_ROOT, bench_metadata

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_drive.json")


def test_drive_perf():
    PERF.reset()
    t0 = time.perf_counter()
    result = run_single_drive(mode="wgtt", speed_mph=15.0, traffic="tcp", seed=0)
    wall_s = time.perf_counter() - t0
    events = PERF.get("drive.events")
    snap = PERF.snapshot()

    bench = {
        "meta": bench_metadata(),
        "benchmark": "drive_end_to_end",
        "mode": "wgtt",
        "speed_mph": 15.0,
        "traffic": "tcp",
        "seed": 0,
        "duration_s": result.duration_s,
        "wall_clock_s": wall_s,
        "events_fired": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "throughput_mbps": result.throughput_mbps,
        "perf_counters": snap["counters"],
        "perf_timers_s": snap["timers_s"],
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(bench, fh, indent=2)
        fh.write("\n")

    print(f"\ndrive: {events:,} events in {wall_s:.1f}s "
          f"({events / wall_s:,.0f} events/s), "
          f"{result.throughput_mbps:.1f} Mb/s "
          f"(wrote {os.path.basename(BENCH_PATH)})")

    assert events > 0
    assert result.throughput_mbps > 0.0
    # The fast path actually ran: LUT inversions and tap-kernel points.
    assert PERF.get("esnr.invert_lut") > 0
    assert PERF.get("phy.tap_eval_points") > 0
