"""End-to-end drive perf benchmark: events/sec through the full stack.

Runs one short default drive (WGTT controller, TCP, fixed seed), records
wall clock, simulator events/sec, and the fast-path perf counters, and
writes ``BENCH_drive.json`` at the repo root.

Two regression gates run against the *committed* numbers before the file
is overwritten:

- events/sec must stay above ``FLOOR_FACTOR`` x the recorded rate (the
  generous factor absorbs machine-to-machine and noisy-neighbour drift;
  a real hot-loop regression is far larger than that), and
- the link-layer ``mean_snr`` memo must keep a >= 30% hit rate -- a
  deterministic property of the unified per-frame sampling instants,
  independent of hardware.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments import run_single_drive
from repro.perf import PERF

from test_perf_phy import REPO_ROOT, bench_metadata

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_drive.json")

#: Fraction of the committed events/sec the current run must reach.  The
#: hot loop is ~2x faster than the pre-batching engine, so even half the
#: recorded rate still clears the old engine's ceiling; anything below
#: this is a genuine regression, not scheduler noise.
FLOOR_FACTOR = 0.4

#: The keyed (uplink, t) memo in front of Link.mean_snr_db must serve at
#: least this hit rate on the default drive (ISSUE PR-9 acceptance).
MEMO_HIT_RATE_FLOOR = 0.30


def _committed_events_per_sec():
    """The events/sec recorded in the checked-in BENCH_drive.json."""
    try:
        with open(BENCH_PATH) as fh:
            return float(json.load(fh).get("events_per_sec", 0.0))
    except (OSError, ValueError):
        return 0.0


def test_drive_perf():
    floor = _committed_events_per_sec() * FLOOR_FACTOR
    PERF.reset()
    t0 = time.perf_counter()
    result = run_single_drive(mode="wgtt", speed_mph=15.0, traffic="tcp", seed=0)
    wall_s = time.perf_counter() - t0
    events = PERF.get("drive.events")
    snap = PERF.snapshot()

    bench = {
        "meta": bench_metadata(),
        "benchmark": "drive_end_to_end",
        "mode": "wgtt",
        "speed_mph": 15.0,
        "traffic": "tcp",
        "seed": 0,
        "duration_s": result.duration_s,
        "wall_clock_s": wall_s,
        "events_fired": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "throughput_mbps": result.throughput_mbps,
        "perf_counters": snap["counters"],
        "perf_timers_s": snap["timers_s"],
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(bench, fh, indent=2)
        fh.write("\n")

    print(f"\ndrive: {events:,} events in {wall_s:.1f}s "
          f"({events / wall_s:,.0f} events/s), "
          f"{result.throughput_mbps:.1f} Mb/s "
          f"(wrote {os.path.basename(BENCH_PATH)})")

    assert events > 0
    assert result.throughput_mbps > 0.0
    # The fast path actually ran: LUT inversions and tap-kernel points.
    assert PERF.get("esnr.invert_lut") > 0
    assert PERF.get("phy.tap_eval_points") > 0
    # Deterministic memo effectiveness (machine-independent).
    hits = PERF.get("link.memo_hits")
    misses = PERF.get("link.memo_misses")
    assert hits + misses > 0
    hit_rate = hits / (hits + misses)
    assert hit_rate >= MEMO_HIT_RATE_FLOOR, (
        f"link.mean_snr memo hit rate {hit_rate:.1%} fell below "
        f"{MEMO_HIT_RATE_FLOOR:.0%}"
    )
    # Events/sec regression floor against the committed benchmark.
    if floor > 0.0:
        rate = events / wall_s if wall_s > 0 else 0.0
        assert rate >= floor, (
            f"{rate:,.0f} events/s is below the regression floor "
            f"{floor:,.0f} ({FLOOR_FACTOR:.0%} of the committed rate)"
        )
