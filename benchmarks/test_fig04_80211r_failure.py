"""Fig. 4: stock 802.11r-style roaming fails in the picocell regime.

The paper drives past two APs at 20 mph and 5 mph with a constant-rate
UDP flow through the *baseline*: at 20 mph the handover fails outright;
at 5 mph it happens but far later than it should, losing capacity.
"""

import numpy as np

from repro.experiments import (
    ServingTimeline,
    capacity_loss_rate,
    mean_throughput_mbps,
)

from common import cached, coverage_window, drive, print_table


def run(speed_mph):
    return drive("baseline", speed_mph, "udp", seed=9)


def test_fig04_slow_drive_switches_late(benchmark):
    result = benchmark.pedantic(lambda: run(5.0), rounds=1, iterations=1)
    net = result.net
    links = net.links_for_client(result.client)
    ap_ids = [ap.node_id for ap in net.aps]
    t0, t1 = coverage_window(5.0)
    loss = capacity_loss_rate(result.timeline, links, ap_ids, t0, t1, sample_s=0.02)
    print_table(
        "Fig. 4(b): baseline at 5 mph",
        ["metric", "value"],
        [
            ["handover attempts", result.client.policy.handover_attempts],
            ["handover failures", result.client.policy.handover_failures],
            ["capacity loss rate", f"{loss:.2f}"],
            ["throughput (Mb/s)", f"{mean_throughput_mbps(result.deliveries, t0, t1):.2f}"],
        ],
    )
    # Handovers mostly succeed at 5 mph, but late switching still loses a
    # sizeable capacity fraction (the shaded area of Fig. 4b).
    assert result.timeline.switch_count >= 2
    assert loss > 0.15


def test_fig04_fast_drive_loses_connectivity(benchmark):
    result = benchmark.pedantic(lambda: run(20.0), rounds=1, iterations=1)
    t0, t1 = coverage_window(20.0)
    # Dead time: longest delivery gap while inside coverage.
    times = sorted(t for t, _b in result.deliveries if t0 <= t < t1)
    gaps = np.diff(times) if len(times) > 1 else np.array([t1 - t0])
    longest_gap = float(gaps.max()) if len(gaps) else t1 - t0
    slow = drive("baseline", 5.0, "udp", seed=9)
    s0, s1 = coverage_window(5.0)
    thr_fast = mean_throughput_mbps(result.deliveries, t0, t1)
    thr_slow = mean_throughput_mbps(slow.deliveries, s0, s1)
    print_table(
        "Fig. 4(a): baseline at 20 mph vs 5 mph",
        ["speed", "throughput (Mb/s)", "longest outage (s)"],
        [
            ["20 mph", f"{thr_fast:.2f}", f"{longest_gap:.2f}"],
            [" 5 mph", f"{thr_slow:.2f}", "-"],
        ],
    )
    # The faster drive does clearly worse and suffers a real outage.
    assert thr_fast < thr_slow
    assert longest_gap > 0.5
