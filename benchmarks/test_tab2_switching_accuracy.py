"""Table 2: switching accuracy of WGTT vs Enhanced 802.11r.

Accuracy = fraction of time the serving AP is the max-ESNR AP.  The paper
reports >90% for WGTT and ~19-20% for the baseline.  Our fading channel
flips the instantaneous optimum faster than the testbed's (see
EXPERIMENTS.md), which bounds any causal algorithm below ~85%; the
reproduction therefore asserts the *gap*, which is the paper's point:
WGTT tracks the optimum, the baseline cannot.
"""

from repro.experiments import switching_accuracy

from common import coverage_window, drive, print_table


def accuracy(result, speed=15.0, tolerance_db=1.0):
    net = result.net
    links = net.links_for_client(result.client)
    ap_ids = [ap.node_id for ap in net.aps]
    t0, t1 = coverage_window(speed)
    return switching_accuracy(
        result.timeline, links, ap_ids, t0, t1,
        sample_s=5e-3, tolerance_db=tolerance_db,
    )


def test_tab2_switching_accuracy(benchmark):
    def run_all():
        out = {}
        for traffic in ("tcp", "udp"):
            for mode in ("wgtt", "baseline"):
                out[(traffic, mode)] = accuracy(drive(mode, 15.0, traffic))
        return out

    acc = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [traffic.upper(),
         f"{100 * acc[(traffic, 'wgtt')]:.1f}",
         f"{100 * acc[(traffic, 'baseline')]:.1f}"]
        for traffic in ("tcp", "udp")
    ]
    print_table(
        "Table 2: switching accuracy (%), 15 mph",
        ["flow", "WGTT", "Enhanced 802.11r"],
        rows,
    )
    for traffic in ("tcp", "udp"):
        wgtt_acc = acc[(traffic, "wgtt")]
        base_acc = acc[(traffic, "baseline")]
        # WGTT tracks the optimal AP the majority of the time...
        assert wgtt_acc > 0.5
        # ...the baseline only a small fraction (paper: ~0.2)...
        assert base_acc < 0.45
        # ...and the gap is decisive (paper: 90 vs 20).
        assert wgtt_acc > base_acc + 0.25
