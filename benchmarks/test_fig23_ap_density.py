"""Fig. 23: UDP throughput in dense vs sparse AP deployment segments.

The testbed's array has a densely-packed stretch and a sparser one; WGTT
sustains higher throughput in the dense segment thanks to uplink
diversity and stronger serving links.
"""

import numpy as np

from repro.experiments import mean_throughput_mbps
from repro.mobility import LinearTrajectory, RoadLayout, mph_to_mps

from common import cached, multi_client_drive, print_table

SPEEDS = (5.0, 15.0, 25.0)


def density_throughputs(speed_mph):
    def run():
        road = RoadLayout.two_density(
            n_dense=4, n_sparse=4, dense_spacing_m=7.5, sparse_spacing_m=15.0
        )
        net, flows = multi_client_drive(
            "wgtt",
            [LinearTrajectory.drive_through(road, speed_mph)],
            traffic="udp", udp_rate_mbps=50.0, seed=37, road=road,
        )
        _c, sender, receiver, deliveries = flows[0]
        v = mph_to_mps(speed_mph)
        # Dense segment: APs 1-4 (x 0..22.5); sparse: APs 5-8 (x 37.5..82.5).
        dense_t = (15.0 / v, (22.5 + 15.0) / v)
        sparse_t = ((37.5 + 15.0) / v, (82.5 + 15.0) / v)
        d = deliveries()
        return (
            mean_throughput_mbps(d, *dense_t),
            mean_throughput_mbps(d, *sparse_t),
        )

    return cached(f"fig23:{speed_mph}", run)


def test_fig23_ap_density(benchmark):
    def run_all():
        return {s: density_throughputs(s) for s in SPEEDS}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"{s:.0f} mph", f"{data[s][0]:.2f}", f"{data[s][1]:.2f}"]
        for s in SPEEDS
    ]
    print_table(
        "Fig. 23: WGTT UDP throughput by deployment density (Mb/s)",
        ["speed", "dense segment", "sparse segment"],
        rows,
    )
    dense = np.array([data[s][0] for s in SPEEDS])
    sparse = np.array([data[s][1] for s in SPEEDS])
    # Paper: ~9.3 vs ~6.7 Mb/s -> dense wins at every speed.
    assert np.all(dense > sparse)
    # And the dense segment stays consistently high across speeds.
    assert dense.min() > 0.5 * dense.max()
