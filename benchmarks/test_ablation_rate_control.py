"""Section 5.2.1's claim: switching decisions, not rate adaptation, are
responsible for most of WGTT's gain.

We swap the driver-default Minstrel for an ESNR-oracle rate controller
(perfect channel knowledge) and compare: if rate adaptation were the
bottleneck, the oracle would transform throughput; if AP selection is
(the paper's claim), the oracle moves throughput far less than switching
moves it relative to the baseline.
"""

from repro.core.ap import ApParams
from repro.experiments import mean_throughput_mbps, run_single_drive

from common import cached, coverage_window, print_table


def run_variant(label, mode="wgtt", **overrides):
    def run():
        result = run_single_drive(
            mode=mode, speed_mph=15.0, traffic="udp", udp_rate_mbps=50.0,
            seed=61, **overrides,
        )
        t0, t1 = coverage_window(15.0)
        return mean_throughput_mbps(result.deliveries, t0, t1)

    return cached(f"ratectl:{label}", run)


def test_ablation_rate_control_vs_ap_selection(benchmark):
    def run_all():
        return {
            "wgtt + minstrel": run_variant("minstrel"),
            "wgtt + ESNR oracle": run_variant(
                "oracle", ap_params=ApParams(rate_control="esnr")
            ),
            "baseline + minstrel": run_variant("baseline", mode="baseline"),
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Ablation: rate adaptation vs AP selection (15 mph UDP)",
        ["variant", "throughput (Mb/s)"],
        [[k, f"{v:.2f}"] for k, v in data.items()],
    )
    minstrel = data["wgtt + minstrel"]
    oracle = data["wgtt + ESNR oracle"]
    baseline = data["baseline + minstrel"]
    switching_gain = minstrel - baseline
    rate_gain = abs(oracle - minstrel)
    print(f"switching gain {switching_gain:.1f} Mb/s vs "
          f"rate-control delta {rate_gain:.1f} Mb/s")
    # The paper's claim, quantified: the switching gain dwarfs anything
    # better rate control can add.
    assert switching_gain > 2.0 * rate_gain
    assert minstrel > baseline
