"""PHY fast-path microbenchmark: batched kernels vs the scalar reference.

Measures the per-point cost of

* CSI (subcarrier gains): Python loop over ``RayleighTap.gain`` + per-t
  steering matvec (the pre-PR scalar path) vs ``subcarrier_gains_at``;
* ESNR: per-point BER averaging + ``invert_ber_bisect`` vs
  ``effective_snr_db_batch`` with LUT inversion;

asserts the batched path is at least 3x faster end to end, and writes
``BENCH_phy.json`` at the repo root with commit-identifiable metadata so
perf can be compared across commits (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time

import numpy as np

from repro.phy.esnr import (
    effective_snr_db_batch,
    invert_ber_bisect,
    subcarrier_snr_db_from_csi,
)
from repro.phy.fading import TappedDelayChannel
from repro.phy.modulation import (
    BER_FUNCTIONS,
    Constellation,
    db_to_linear,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_phy.json")

N_POINTS = 2000
MIN_SPEEDUP = 3.0


def bench_metadata() -> dict:
    """Commit-identifiable environment stamp shared by all BENCH files."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        commit = "unknown"
    try:
        dirty = bool(subprocess.run(
            ["git", "status", "--porcelain"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip())
    except Exception:
        dirty = None
    return {
        "commit": commit,
        "dirty": dirty,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


def _scalar_csi(channel: TappedDelayChannel, ts: np.ndarray) -> np.ndarray:
    """The pre-PR per-timestamp path: per-tap gain loop + steering matvec."""
    out = np.empty((ts.size, channel.n_subcarriers), dtype=complex)
    for i, t in enumerate(ts):
        gains = np.array(
            [tap.gain(float(t)) for tap in channel.taps], dtype=complex
        )
        out[i] = channel._steering @ gains
    return out


def _scalar_esnr(snr_2d: np.ndarray, constellation: str) -> np.ndarray:
    """Per-point BER averaging + bisection inversion (the pre-PR path)."""
    ber_fn = BER_FUNCTIONS[constellation]
    out = np.empty(snr_2d.shape[0])
    for i, row in enumerate(snr_2d):
        mean_ber = float(np.mean(ber_fn(db_to_linear(row))))
        out[i] = invert_ber_bisect(mean_ber, constellation)
    return out


def test_phy_fast_path_speedup():
    channel = TappedDelayChannel(np.random.default_rng(0), 92.0, rician_k=4.0)
    ts = np.linspace(0.0, 8.0, N_POINTS)
    constellation = Constellation.QAM64

    # Warm both paths (LUT construction, numpy kernel compilation).
    channel.subcarrier_gains_at(ts[:8])
    _scalar_csi(channel, ts[:8])

    t0 = time.perf_counter()
    csi_scalar = _scalar_csi(channel, ts)
    snr_scalar = subcarrier_snr_db_from_csi(csi_scalar, 30.0)
    esnr_scalar = _scalar_esnr(snr_scalar, constellation)
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    csi_batch = channel.subcarrier_gains_at(ts)
    snr_batch = subcarrier_snr_db_from_csi(csi_batch, 30.0)
    esnr_batch = effective_snr_db_batch(snr_batch, constellation)
    batched_s = time.perf_counter() - t0

    # Same numbers, much faster: the speedup claim is only meaningful
    # because the outputs are identical.
    assert np.array_equal(csi_batch, csi_scalar)
    assert np.array_equal(esnr_batch, esnr_scalar)

    speedup = scalar_s / batched_s
    result = {
        "meta": bench_metadata(),
        "benchmark": "phy_fast_path",
        "n_points": N_POINTS,
        "n_subcarriers": channel.n_subcarriers,
        "constellation": constellation,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "scalar_us_per_point": 1e6 * scalar_s / N_POINTS,
        "batched_us_per_point": 1e6 * batched_s / N_POINTS,
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
        "outputs_bit_identical": True,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    print(f"\nPHY fast path: scalar {1e6 * scalar_s / N_POINTS:.1f} us/pt, "
          f"batched {1e6 * batched_s / N_POINTS:.1f} us/pt "
          f"-> {speedup:.1f}x (wrote {os.path.basename(BENCH_PATH)})")
    assert speedup >= MIN_SPEEDUP, (
        f"batched PHY path only {speedup:.2f}x faster than scalar "
        f"(required {MIN_SPEEDUP}x); see {BENCH_PATH}"
    )
