"""Table 5: web page load time at different driving speeds.

The client fetches a 2.1 MB page from the local server mid-drive.  The
paper: WGTT loads in a stable ~4.5 s at every speed; the baseline takes
15-18 s at low speed and never completes at 15+ mph.
"""

import math

from repro.apps.web import WebPageLoad, WebPageParams
from repro.experiments import ExperimentConfig, attach_tcp_downlink, build_network
from repro.mobility import COVERAGE_ENTRY_OFFSET_M, LinearTrajectory, RoadLayout

from common import cached, fmt, print_table

SPEEDS = (5.0, 10.0, 15.0, 20.0)


def load_time(mode, speed_mph):
    def run():
        road = RoadLayout()
        net = build_network(ExperimentConfig(mode=mode, road=road, seed=47))
        trajectory = LinearTrajectory.drive_through(road, speed_mph)
        client = net.add_client(trajectory)
        params = WebPageParams()
        sender, receiver = attach_tcp_downlink(
            net, client, app_limit_bytes=params.page_bytes
        )
        load = WebPageLoad(net.sim, sender, receiver, params)
        start = max(0.05, (min(road.ap_x) - COVERAGE_ENTRY_OFFSET_M
                           - trajectory.start_x)
                    / trajectory.speed_mps)
        net.sim.schedule(start, load.start)
        net.run(until=trajectory.transit_duration(road))
        return load.load_time_s

    return cached(f"tab5:{mode}:{speed_mph}", run)


def test_tab5_web_page_load_time(benchmark):
    def run_all():
        return {
            (mode, s): load_time(mode, s)
            for mode in ("wgtt", "baseline")
            for s in SPEEDS
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"{s:.0f} mph", fmt(data[("wgtt", s)]), fmt(data[("baseline", s)])]
        for s in SPEEDS
    ]
    print_table(
        "Table 5: 2.1 MB page load time (s)",
        ["speed", "WGTT", "Enhanced 802.11r"],
        rows,
    )
    wgtt_times = [data[("wgtt", s)] for s in SPEEDS]
    base_times = [data[("baseline", s)] for s in SPEEDS]
    # WGTT completes the page at every speed, in stable single-digit time.
    assert all(math.isfinite(t) for t in wgtt_times)
    assert max(wgtt_times) < 10.0
    assert max(wgtt_times) - min(wgtt_times) < 5.0
    # The baseline is far slower or never finishes at the higher speeds.
    slowdowns = [
        bt / wt if math.isfinite(bt) else math.inf
        for wt, bt in zip(wgtt_times, base_times)
    ]
    assert max(slowdowns) > 2.0
    assert any(not math.isfinite(t) for t in base_times[2:]) or max(slowdowns) > 3.0
