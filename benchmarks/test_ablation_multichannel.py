"""Section 7 discussion: single-channel vs multi-channel deployment.

The paper argues WGTT should keep all APs on one channel: alternating
channels would remove inter-AP interference but (a) halve the AP density
available to a client, and (b) break uplink overhearing and block-ACK
forwarding across channels.  This ablation quantifies that trade-off:
clients stay tuned to channel 11, so under the 11/6 alternating plan only
every other AP can serve them.
"""

from repro.experiments import mean_throughput_mbps, run_single_drive

from common import cached, coverage_window, print_table


def run_plan(label, channel_plan):
    def run():
        result = run_single_drive(
            mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=50.0,
            seed=59, channel_plan=channel_plan,
        )
        t0, t1 = coverage_window(15.0)
        return (
            mean_throughput_mbps(result.deliveries, t0, t1),
            result.trace.count("ba_forwarded"),
            result.timeline.switch_count,
        )

    return cached(f"multichannel:{label}", run)


def test_ablation_single_vs_multi_channel(benchmark):
    def run_all():
        return {
            "single (all ch 11)": run_plan("single", None),
            "alternating (11/6)": run_plan("alt", [11, 6]),
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, f"{thr:.2f}", fwd, sw]
        for name, (thr, fwd, sw) in data.items()
    ]
    print_table(
        "Section 7: channel plan ablation (WGTT, 15 mph UDP)",
        ["plan", "throughput (Mb/s)", "BAs forwarded", "switches"],
        rows,
    )
    single_thr = data["single (all ch 11)"][0]
    multi_thr = data["alternating (11/6)"][0]
    # The paper's position: single channel wins for WGTT because density
    # and overhearing matter more than interference avoidance.
    assert single_thr > multi_thr
    # Cross-AP overhearing only exists on the shared channel.
    assert data["single (all ch 11)"][1] > data["alternating (11/6)"][1]
