"""Table 3: link-layer (block-)ACK collision rate at the client.

All WGTT APs that decode an uplink aggregate want to answer with a block
ACK.  Because the APs are mutually audible, the later responder hears the
earlier BA on the air and suppresses its own (the microsecond turnaround
jitter the paper measured); only near-simultaneous starts can collide.
The paper measures 0.001-0.004% by counting uplink retransmissions as an
upper bound -- the same metric reported here.
"""

import numpy as np

from repro.mobility import LinearTrajectory, RoadLayout

from common import cached, multi_client_drive, print_table


def measure(rate_mbps):
    def run():
        road = RoadLayout()
        net, flows = multi_client_drive(
            "wgtt",
            [LinearTrajectory.drive_through(road, 15.0)],
            traffic="udp", udp_rate_mbps=rate_mbps, uplink=True, seed=29,
        )
        client = flows[0][0]
        ba_collisions = sum(
            1 for r in net.trace.iter_records("phy_collision")
            if r["rx"] == client.node_id
        )
        uplink_aggregates = sum(
            1 for r in net.trace.iter_records("ampdu_tx") if r["uplink"]
        )
        state = client.radio.peers.get(net.bssid)
        retransmit_frac = (
            (state.mpdus_sent - state.mpdus_acked - state.mpdus_dropped)
            / max(state.mpdus_sent, 1)
            if state else 0.0
        )
        return {
            "collisions": ba_collisions,
            "aggregates": uplink_aggregates,
            "suppressed": net.medium.responses_suppressed,
            "retransmit_frac": max(0.0, retransmit_frac),
        }

    return cached(f"tab3:{rate_mbps}", run)


def test_tab3_ack_collision_rate(benchmark):
    rates = (10.0, 20.0)

    def run_all():
        return {rate: measure(rate) for rate in rates}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for rate in rates:
        d = data[rate]
        pct = 100.0 * d["collisions"] / max(d["aggregates"], 1)
        rows.append([
            f"{rate:.0f}", d["aggregates"], d["suppressed"],
            d["collisions"], f"{pct:.3f}%",
        ])
    print_table(
        "Table 3: BA responses at the client (uplink UDP)",
        ["rate (Mb/s)", "uplink aggregates", "BAs deferred", "collisions", "collision rate"],
        rows,
    )
    for rate in rates:
        d = data[rate]
        # Deferral must actually engage (several APs decode each frame)...
        assert d["suppressed"] > 0
        # ...and residual collisions are a negligible fraction (paper:
        # 0.001-0.004%; our capture/antenna model is cruder, so we assert
        # the same conclusion at a 1% bound).
        assert d["collisions"] / max(d["aggregates"], 1) < 0.01
