"""Fig. 13: TCP and UDP throughput vs client speed, WGTT vs baseline.

The paper's headline: WGTT stays roughly flat from static to 35 mph while
Enhanced 802.11r collapses with speed, giving a 2.4-4.7x TCP and
2.6-4.0x UDP advantage at driving speeds.
"""

import numpy as np

from common import drive_throughput, fmt, print_table

SPEEDS = (0.0, 5.0, 15.0, 25.0, 35.0)


def matrix(traffic):
    out = {}
    for mode in ("wgtt", "baseline"):
        out[mode] = [drive_throughput(mode, s, traffic) for s in SPEEDS]
    return out


def _report(traffic, data):
    rows = []
    for i, speed in enumerate(SPEEDS):
        w, b = data["wgtt"][i], data["baseline"][i]
        label = "static" if speed == 0 else f"{speed:.0f} mph"
        rows.append([label, fmt(w), fmt(b), fmt(w / max(b, 1e-6), 1) + "x"])
    print_table(
        f"Fig. 13: {traffic.upper()} throughput vs speed (Mb/s)",
        ["speed", "WGTT", "Enhanced 802.11r", "gain"],
        rows,
    )


def test_fig13_udp(benchmark):
    data = benchmark.pedantic(lambda: matrix("udp"), rounds=1, iterations=1)
    _report("udp", data)
    wgtt, base = np.array(data["wgtt"]), np.array(data["baseline"])
    # WGTT stays high at speed (>= 50% of its static value at 35 mph).
    assert wgtt[-1] > 0.4 * wgtt[0]
    # The baseline collapses with speed.
    assert base[-1] < 0.5 * base[1]
    # At driving speeds WGTT clearly wins (paper: 2.6-4.0x).
    for i in (2, 3, 4):
        assert wgtt[i] > 1.8 * base[i]


def test_fig13_tcp(benchmark):
    data = benchmark.pedantic(lambda: matrix("tcp"), rounds=1, iterations=1)
    _report("tcp", data)
    wgtt, base = np.array(data["wgtt"]), np.array(data["baseline"])
    assert base[-1] < 0.5 * base[1]
    # Paper: 2.4-4.7x at driving speed; require a clear win at 25+.
    for i in (3, 4):
        assert wgtt[i] > 1.8 * base[i]
    # WGTT TCP keeps a usable pipe at every speed.
    assert min(wgtt[1:]) > 4.0
