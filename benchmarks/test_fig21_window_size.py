"""Fig. 21: channel capacity loss vs the AP-selection window size W.

The paper's emulation: replay recorded ESNR traces through the selector
with varying W and measure capacity loss.  Too small a window chases
noise; too large a window lags the channel; ~10 ms minimises the loss.
"""

import numpy as np

from repro.core.ap_selection import ApSelector
from repro.experiments import ExperimentConfig, build_network
from repro.mobility import DEFAULT_SPAN_M, LEAD_IN_M, LinearTrajectory, mph_to_mps
from repro.phy.mcs import link_capacity_mbps

from common import cached, print_table

WINDOWS_MS = (2, 5, 10, 20, 50, 120)


def collect_traces(seed):
    """ESNR readings at ~2 ms cadence per AP, plus true capacities."""
    net = build_network(ExperimentConfig(mode="wgtt", seed=seed))
    trajectory = LinearTrajectory.drive_through(net.road, 15.0)
    client = net.add_client(trajectory)
    links = net.links_for_client(client)
    v = mph_to_mps(15.0)
    ts = np.arange(LEAD_IN_M / v, (DEFAULT_SPAN_M + LEAD_IN_M) / v, 2e-3)
    esnr = np.array([[link.esnr_db(float(t)) for link in links] for t in ts])
    return ts, esnr


def emulate(ts, esnr, window_s, rng_seed=5, switch_cost_s=0.017):
    """Replay the traces through the selector; return capacity loss rate.

    Faithful to the system the paper emulated around:

    * readings are *sparse and gated* -- an AP only measures CSI when it
      decodes a client frame, so weak links report rarely and even strong
      links report every couple of milliseconds, not continuously;
    * every switch costs ~17 ms (Table 1) during which the old AP keeps
      (under-)serving.

    Small windows chase single noisy readings and pay the switch cost
    constantly; big windows lag the channel -- hence the U-shape.
    """
    import numpy as _np

    rng = _np.random.default_rng(rng_seed)
    n_aps = esnr.shape[1]
    selector = ApSelector(window_s=window_s, min_readings=1)
    serving = None
    pending = None  # (effective_time, ap)
    chosen_cap = 0.0
    best_cap = 0.0
    for i, t in enumerate(ts):
        for ap in range(n_aps):
            # Decode-gated sampling: strong links measure often, weak
            # links rarely (sigmoid decode probability per 2 ms slot).
            p_decode = 1.0 / (1.0 + _np.exp(-(esnr[i, ap] - 4.0)))
            if rng.random() < 0.7 * p_decode:
                noisy = esnr[i, ap] + rng.normal(0.0, 3.0)  # estimator noise
                selector.update(ap, float(t), float(noisy))
        if pending is not None and t >= pending[0]:
            serving = pending[1]
            pending = None
        best = selector.best_ap(float(t))
        if best is not None and best != serving and pending is None:
            pending = (t + switch_cost_s, best)
        caps = [link_capacity_mbps(float(e)) for e in esnr[i]]
        best_cap += max(caps)
        if serving is not None:
            chosen_cap += caps[serving]
    return 1.0 - chosen_cap / best_cap if best_cap else 0.0


def test_fig21_window_size_sweep(benchmark):
    def run():
        ts, esnr = cached("fig21:traces", lambda: collect_traces(23))
        return {w: emulate(ts, esnr, w / 1000.0) for w in WINDOWS_MS}

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{w} ms", f"{losses[w]:.3f}"] for w in WINDOWS_MS]
    print_table(
        "Fig. 21: capacity loss rate vs selection window W",
        ["window", "capacity loss rate"],
        rows,
    )
    best_w = min(losses, key=losses.get)
    print(f"minimum at W = {best_w} ms (paper: 10 ms)")
    # The minimum sits in the middle of the sweep: both extremes lose more.
    assert losses[2] >= losses[best_w]
    assert losses[120] > losses[best_w]
    assert 5 <= best_w <= 60
