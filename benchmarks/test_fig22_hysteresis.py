"""Fig. 22: effect of the switching time hysteresis (120 -> 40 ms).

Smaller hysteresis lets the controller chase the channel: throughput
grows as the hysteresis shrinks, and the switch rate rises.
"""

import numpy as np

from repro.core.controller import ControllerParams
from repro.experiments import mean_throughput_mbps, run_single_drive

from common import cached, coverage_window, print_table

HYSTERESIS_MS = (40, 80, 120)


def run_with_hysteresis(hyst_ms):
    def run():
        result = run_single_drive(
            mode="wgtt", speed_mph=15.0, traffic="tcp", seed=31,
            controller_params=ControllerParams(hysteresis_s=hyst_ms / 1000.0),
        )
        t0, t1 = coverage_window(15.0)
        return (
            mean_throughput_mbps(result.deliveries, t0, t1),
            result.timeline.switch_count,
        )

    return cached(f"fig22:{hyst_ms}", run)


def test_fig22_hysteresis_sweep(benchmark):
    def run_all():
        return {h: run_with_hysteresis(h) for h in HYSTERESIS_MS}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"{h} ms", f"{data[h][0]:.2f}", data[h][1]] for h in HYSTERESIS_MS
    ]
    print_table(
        "Fig. 22: TCP throughput vs switching hysteresis, 15 mph",
        ["hysteresis", "throughput (Mb/s)", "switches"],
        rows,
    )
    # Smaller hysteresis -> more switches.
    assert data[40][1] > data[120][1]
    # Throughput never collapses at any setting (prompt switches keep the
    # link alive -- the paper's main observation for this figure), and the
    # smallest hysteresis is at least competitive with the largest.
    for h in HYSTERESIS_MS:
        assert data[h][0] > 2.0
    assert data[40][0] >= 0.7 * data[120][0]
