"""Policy tournament: every handover policy through the same gauntlet.

Runs each registered handover policy over a speed x AP-density grid
(inside the WGTT data plane, on identical channel realisations -- sweep
seeds deliberately do not depend on the policy), and scores each drive
on:

* coverage throughput (Mbit/s, the Fig. 13 number);
* switching accuracy against the max-ESNR oracle (Table 2);
* capacity captured vs the oracle (1 - capacity_loss_rate, Fig. 21);
* switch rate (switches/s, the chatter the hysteresis bounds).

Results land in ``BENCH_policies.json`` at the repo root with commit
metadata.  Drives go through the sweep runner and the persistent result
cache, so a re-run (and the CI smoke job) skips simulation entirely.

Scaling knobs (the CI smoke job uses the first two)::

    REPRO_TOURNAMENT_POLICIES=wgtt-max-median,baseline-80211r
    REPRO_TOURNAMENT_SPEEDS=25
    REPRO_TOURNAMENT_DENSITIES=default
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments import ExperimentConfig, build_network, run_single_drive
from repro.experiments.metrics import capacity_loss_rate, switching_accuracy
from repro.mobility import LinearTrajectory, RoadLayout
from repro.orchestration import SweepSpec, run_sweep
from repro.policies import PolicySpec, profile_from_drive

from common import SEED, result_cache
from test_perf_phy import REPO_ROOT, bench_metadata

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_policies.json")

#: AP-density conditions (Fig. 23 style): name -> (n_aps, spacing_m).
#: None values mean the default 8-AP / 7.5 m testbed grid.
DENSITIES: Dict[str, Tuple[Optional[int], Optional[float]]] = {
    "default": (None, None),
    "sparse": (6, 12.0),
}

DEFAULT_SPEEDS = (15.0, 25.0)
DEFAULT_POLICIES = (
    "wgtt-max-median",
    "baseline-80211r",
    "coverage-map",
    "trajectory-predictive",
    "datarate-estimator",
    "greedy-instant",
)
UDP_RATE = 50.0


def _env_list(name: str, default):
    raw = os.environ.get(name)
    if not raw:
        return list(default)
    return [item.strip() for item in raw.split(",") if item.strip()]


def _road_for(density: str) -> RoadLayout:
    n_aps, spacing = DENSITIES[density]
    if n_aps is None and spacing is None:
        return RoadLayout()
    return RoadLayout.uniform(n_aps or 8, spacing or 7.5)


def _policy_spec(name: str, density: str) -> PolicySpec:
    """The tournament entry for ``name`` (trains a profile if needed)."""
    if name != "datarate-estimator":
        return PolicySpec(name=name)
    # The estimator selects on history: learn its ESNR-vs-position
    # profile from a cheap training drive on the same road (a different
    # seed, so it never sees the evaluation channel realisation).
    road = _road_for(density)
    training = run_single_drive(
        mode="wgtt", speed_mph=15.0, traffic="udp", udp_rate_mbps=5.0,
        seed=SEED + 1000, road=road,
    )
    profile = profile_from_drive(training)
    return PolicySpec(name=name, params={"profile": profile.to_dict()})


def _oracle_links(density: str, speed_mph: float, seed: int):
    """Deterministically rebuild the evaluation drive's links.

    Link RNG streams derive only from (seed, client index), so building
    the same network and client trajectory reproduces the exact fading
    processes the drive saw -- the oracle scores against ground truth.
    """
    road = _road_for(density)
    net = build_network(ExperimentConfig(mode="wgtt", road=road, seed=seed))
    trajectory = LinearTrajectory.drive_through(road, speed_mph)
    client = net.add_client(trajectory)
    return net.links_for_client(client), [ap.node_id for ap in net.aps]


def test_policy_tournament():
    policy_names = _env_list("REPRO_TOURNAMENT_POLICIES", DEFAULT_POLICIES)
    speeds = [float(s) for s in _env_list("REPRO_TOURNAMENT_SPEEDS",
                                          DEFAULT_SPEEDS)]
    densities = _env_list("REPRO_TOURNAMENT_DENSITIES", list(DENSITIES))

    cache = result_cache()
    rows: List[dict] = []
    oracle_cache: Dict[Tuple[str, float], tuple] = {}

    for density in densities:
        n_aps, spacing = DENSITIES[density]
        policies = [_policy_spec(name, density) for name in policy_names]
        spec = SweepSpec(
            modes=("wgtt",), speeds_mph=speeds, traffics=("udp",),
            seeds=(SEED,), udp_rate_mbps=UDP_RATE,
            n_aps=n_aps, ap_spacing_m=spacing,
            policies=policies,
        )
        result = run_sweep(spec, jobs=1, cache=cache)
        assert result.ok, [f"{f.job.key()}: {f.error}" for f in result.failures]
        for job, summary in zip(result.jobs, result.summaries):
            key = (density, job.speed_mph)
            if key not in oracle_cache:
                oracle_cache[key] = _oracle_links(density, job.speed_mph,
                                                  job.seed)
            links, ap_ids = oracle_cache[key]
            t0, t1 = summary.coverage_t0, summary.coverage_t1
            timeline = summary.timeline
            loss = capacity_loss_rate(timeline, links, ap_ids, t0, t1)
            rows.append({
                "policy": summary.policy,
                "density": density,
                "speed_mph": job.speed_mph,
                "throughput_mbps": summary.coverage_throughput_mbps,
                "switching_accuracy": switching_accuracy(
                    timeline, links, ap_ids, t0, t1
                ),
                "optimal_capacity_fraction": 1.0 - loss,
                "switch_count": summary.switch_count,
                "switch_per_s": summary.switch_count / max(t1 - t0, 1e-9),
                "wall_clock_s": summary.wall_clock_s,
            })

    bench = {
        "meta": bench_metadata(),
        "benchmark": "policy_tournament",
        "seed": SEED,
        "speeds_mph": speeds,
        "densities": {d: DENSITIES[d] for d in densities},
        "udp_rate_mbps": UDP_RATE,
        "policies": policy_names,
        "rows": rows,
        "cache_stats": cache.stats(),
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(bench, fh, indent=2)
        fh.write("\n")

    # ---------------------------------------------------------- reporting
    print(f"\n=== policy tournament (seed {SEED}) ===")
    header = (f"{'policy':>28} {'density':>8} {'mph':>5} {'Mb/s':>7} "
              f"{'acc':>6} {'cap%':>6} {'sw/s':>6}")
    print(header)
    for row in sorted(rows, key=lambda r: (r["density"], r["speed_mph"],
                                           -r["throughput_mbps"])):
        print(f"{row['policy']:>28} {row['density']:>8} "
              f"{row['speed_mph']:5.0f} {row['throughput_mbps']:7.2f} "
              f"{row['switching_accuracy']:6.2f} "
              f"{100 * row['optimal_capacity_fraction']:6.1f} "
              f"{row['switch_per_s']:6.2f}")
    print(f"(wrote {os.path.basename(BENCH_PATH)}; cache {cache.stats()})")

    # ---------------------------------------------------------- assertions
    assert rows, "tournament produced no results"
    if not os.environ.get("REPRO_TOURNAMENT_POLICIES"):
        assert len({r["policy"] for r in rows}) >= 5

    def mean_tput(policy_prefix: str, speed: float) -> Optional[float]:
        vals = [r["throughput_mbps"] for r in rows
                if r["policy"].startswith(policy_prefix)
                and r["speed_mph"] == speed]
        return float(np.mean(vals)) if vals else None

    # The paper's claim, restated as a tournament invariant: at driving
    # speeds the max-median rule beats the threshold + scan baseline.
    for speed in speeds:
        if speed < 25.0:
            continue
        wgtt = mean_tput("wgtt-max-median", speed)
        base = mean_tput("baseline-80211r", speed)
        if wgtt is not None and base is not None:
            assert wgtt > base, (
                f"wgtt-max-median ({wgtt:.2f} Mb/s) should beat "
                f"baseline-80211r ({base:.2f} Mb/s) at {speed:g} mph"
            )
