"""Fig. 17: per-client downlink throughput with 1-3 simultaneous clients.

WGTT keeps a healthy per-client share as clients are added; the baseline
degrades faster (no uplink diversity, more loss), widening the gap from
~2.1-2.5x at one client to ~2.4-2.6x at three (paper numbers).
"""

import numpy as np

from repro.experiments import mean_throughput_mbps
from repro.mobility import LinearTrajectory, RoadLayout

from common import cached, coverage_window, multi_client_drive, print_table


def convoy(road, n):
    # n cars following at 4 m spacing, 15 mph (the paper's multi-client
    # drives keep the cars together on the road).
    return [
        LinearTrajectory.drive_through(road, 15.0, offset_m=-4.0 * i)
        for i in range(n)
    ]


def per_client_throughput(mode, n, traffic):
    def run():
        road = RoadLayout()
        net, flows = multi_client_drive(
            mode, convoy(road, n), traffic=traffic, udp_rate_mbps=30.0, seed=13
        )
        t0, t1 = coverage_window(15.0)
        return [
            mean_throughput_mbps(deliveries(), t0, t1)
            for _c, _s, _r, deliveries in flows
        ]

    return cached(f"fig17:{mode}:{n}:{traffic}", run)


def test_fig17_multiclient_udp(benchmark):
    def run_all():
        return {
            (mode, n): per_client_throughput(mode, n, "udp")
            for mode in ("wgtt", "baseline")
            for n in (1, 2, 3)
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for n in (1, 2, 3):
        w = float(np.mean(data[("wgtt", n)]))
        b = float(np.mean(data[("baseline", n)]))
        rows.append([n, f"{w:.2f}", f"{b:.2f}", f"{w / max(b, 1e-6):.1f}x"])
    print_table(
        "Fig. 17: mean per-client UDP throughput (Mb/s), 15 mph",
        ["clients", "WGTT", "Enhanced 802.11r", "gain"],
        rows,
    )
    for n in (1, 2, 3):
        assert np.mean(data[("wgtt", n)]) > 1.5 * np.mean(data[("baseline", n)])
    # Per-client WGTT throughput shrinks as clients share the channel.
    assert np.mean(data[("wgtt", 3)]) < np.mean(data[("wgtt", 1)])


def test_fig17_multiclient_tcp(benchmark):
    def run_all():
        return {
            (mode, n): per_client_throughput(mode, n, "tcp")
            for mode in ("wgtt", "baseline")
            for n in (1, 3)
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for n in (1, 3):
        w = float(np.mean(data[("wgtt", n)]))
        b = float(np.mean(data[("baseline", n)]))
        rows.append([n, f"{w:.2f}", f"{b:.2f}", f"{w / max(b, 1e-6):.1f}x"])
    print_table(
        "Fig. 17: mean per-client TCP throughput (Mb/s), 15 mph",
        ["clients", "WGTT", "Enhanced 802.11r", "gain"],
        rows,
    )
    for n in (1, 3):
        assert np.mean(data[("wgtt", n)]) > 1.3 * np.mean(data[("baseline", n)])
