"""Fig. 24: frame rate CDF for bidirectional video conferencing.

A two-way UDP video call runs during the drive.  The paper reports an
85th percentile of ~20 fps for the Skype-like profile (both 5 and
15 mph) and higher for the Hangouts-like profile (smaller frames).
"""

import numpy as np

from repro.apps.conferencing import (
    HANGOUTS_PROFILE,
    SKYPE_PROFILE,
    ConferencingReceiver,
    ConferencingSender,
)
from repro.experiments import ExperimentConfig, build_network
from repro.mobility import (
    COVERAGE_ENTRY_OFFSET_M,
    DEFAULT_SPAN_M,
    LEAD_IN_M,
    LinearTrajectory,
    RoadLayout,
    mph_to_mps,
)

from common import cached, print_table


def run_call(speed_mph, profile, seed=43):
    def run():
        road = RoadLayout()
        net = build_network(ExperimentConfig(mode="wgtt", road=road, seed=seed))
        trajectory = LinearTrajectory.drive_through(road, speed_mph)
        client = net.add_client(trajectory)

        # Downlink leg: conference room -> car.
        down_rx = ConferencingReceiver(net.sim, flow_id=900, params=profile)
        client.register_flow(900, down_rx.on_packet)
        down_tx = ConferencingSender(net.sim, net.server_send, src=net.server_id,
                                     dst=client.node_id, flow_id=900, params=profile)
        # Uplink leg: car camera -> conference room.
        up_rx = ConferencingReceiver(net.sim, flow_id=901, params=profile)
        net.controller.register_uplink_handler(
            901, net.deliver_to_server(up_rx.on_packet)
        )
        up_tx = ConferencingSender(net.sim, client.uplink_send, src=client.node_id,
                                   dst=net.server_id, flow_id=901, params=profile)

        start = max(0.05, (min(road.ap_x) - COVERAGE_ENTRY_OFFSET_M
                           - trajectory.start_x)
                    / trajectory.speed_mps)
        net.sim.schedule(start, down_tx.start)
        net.sim.schedule(start, up_tx.start)
        duration = trajectory.transit_duration(road)
        net.run(until=duration)
        v = mph_to_mps(speed_mph)
        t0, t1 = LEAD_IN_M / v, (DEFAULT_SPAN_M + LEAD_IN_M) / v
        return down_rx.fps_samples(t0, t1)

    return cached(f"fig24:{speed_mph}:{profile.name}", run)


def test_fig24_conferencing_fps(benchmark):
    cases = [
        (5.0, SKYPE_PROFILE),
        (15.0, SKYPE_PROFILE),
        (15.0, HANGOUTS_PROFILE),
    ]

    def run_all():
        return {(s, p.name): run_call(s, p) for s, p in cases}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for (speed, name), samples in data.items():
        arr = np.array(samples)
        rows.append([
            f"{speed:.0f} mph", name,
            f"{np.percentile(arr, 15):.0f}",
            f"{np.median(arr):.0f}",
            f"{np.percentile(arr, 85):.0f}",
        ])
    print_table(
        "Fig. 24: downlink conferencing fps over WGTT",
        ["speed", "app", "p15", "p50", "p85"],
        rows,
    )
    skype_5 = np.array(data[(5.0, "skype")])
    skype_15 = np.array(data[(15.0, "skype")])
    hangouts = np.array(data[(15.0, "hangouts")])
    # Paper: ~20+ fps at the 85th percentile for Skype at both speeds.
    assert np.percentile(skype_5, 85) >= 20
    assert np.percentile(skype_15, 85) >= 20
    # Hangouts (smaller frames, higher rate) renders more fps.
    assert np.median(hangouts) > np.median(skype_15)
