"""Fig. 16: CDF of the link bit rate during a 15 mph drive.

WGTT rides the good part of each cell so its transmissions use high MCS;
the baseline camps on dying links and falls to low rates.  The paper
reports a ~70 Mb/s 90th percentile for WGTT, ~30 Mb/s above the baseline.
"""

import numpy as np

from common import coverage_window, drive, print_table


def rate_samples(result, t0, t1):
    return np.array([
        r["rate_mbps"]
        for r in result.trace.iter_records("ampdu_tx")
        if not r["uplink"] and t0 <= r.time < t1
    ])


def test_fig16_link_bitrate_cdf(benchmark):
    def run_both():
        return drive("wgtt", 15.0, "udp"), drive("baseline", 15.0, "udp")

    wgtt, base = benchmark.pedantic(run_both, rounds=1, iterations=1)
    t0, t1 = coverage_window(15.0)
    rows = []
    p90 = {}
    for name, result in (("WGTT", wgtt), ("Enhanced 802.11r", base)):
        rates = rate_samples(result, t0, t1)
        p90[name] = np.percentile(rates, 90)
        rows.append([
            name,
            f"{np.percentile(rates, 10):.1f}",
            f"{np.percentile(rates, 50):.1f}",
            f"{np.percentile(rates, 90):.1f}",
        ])
    print_table(
        "Fig. 16: link bit rate percentiles (Mb/s), 15 mph UDP",
        ["system", "p10", "p50", "p90"],
        rows,
    )
    # WGTT's 90th percentile reaches the top HT20 rates (paper: ~70 Mb/s).
    assert p90["WGTT"] >= 57.0
    # And clearly exceeds the baseline's.
    assert p90["WGTT"] >= p90["Enhanced 802.11r"]
