"""Fig. 15: UDP equivalent of Fig. 14 -- rate stability and switch counts.

WGTT sustains a stable UDP rate via frequent switching; the baseline
switches only a handful of times in the whole transit and oscillates.
"""

import numpy as np

from repro.experiments import throughput_timeseries

from common import coverage_window, drive, print_table


def test_fig15_udp_timeseries(benchmark):
    def run_both():
        return drive("wgtt", 15.0, "udp"), drive("baseline", 15.0, "udp")

    wgtt, base = benchmark.pedantic(run_both, rounds=1, iterations=1)
    t0, t1 = coverage_window(15.0)
    stats = {}
    rows = []
    for name, result in (("WGTT", wgtt), ("Enhanced 802.11r", base)):
        _ts, mbps = throughput_timeseries(result.deliveries, t0, t1, bin_s=0.5)
        stats[name] = (result.timeline.switch_count, np.mean(mbps), np.std(mbps), mbps)
        rows.append([
            name,
            result.timeline.switch_count,
            f"{np.mean(mbps):.2f}",
            f"{np.std(mbps) / max(np.mean(mbps), 1e-9):.2f}",
        ])
    print_table(
        "Fig. 15: UDP during a 15 mph drive",
        ["system", "switches", "mean (Mb/s)", "coeff. of variation"],
        rows,
    )
    wgtt_switches, wgtt_mean, _w_std, wgtt_series = stats["WGTT"]
    base_switches, base_mean, _b_std, base_series = stats["Enhanced 802.11r"]
    # Paper: WGTT switches constantly; the baseline only ~3 times in 10 s.
    assert wgtt_switches > 3 * max(base_switches, 1)
    assert wgtt_mean > 1.8 * base_mean
    # Baseline rate collapses in some bins; WGTT rarely does.
    assert np.mean(base_series < 0.2 * base_mean) > np.mean(
        wgtt_series < 0.2 * wgtt_mean
    )
