"""Fig. 18: uplink UDP loss with three clients, multi-AP vs single-AP
reception.

In WGTT every AP forwards overheard uplink packets (controller de-dups),
so uplink loss stays near zero; the baseline's single uplink path loses
bursts at every cell edge.
"""

import numpy as np

from repro.mobility import COVERAGE_ENTRY_OFFSET_M, LinearTrajectory, RoadLayout

from common import cached, coverage_window, multi_client_drive, print_table


def uplink_losses(mode):
    """Loss of datagrams *sent while inside coverage* (the paper's x-axis
    is the transition through the array; packets emitted after the car
    leaves coverage are not part of the experiment)."""

    def run():
        road = RoadLayout()
        trajectories = [
            LinearTrajectory.drive_through(road, 15.0, offset_m=-4.0 * i)
            for i in range(3)
        ]
        net, flows = multi_client_drive(
            mode, trajectories, traffic="udp", udp_rate_mbps=6.0,
            uplink=True, seed=17,
        )
        t0, t1 = coverage_window(15.0)
        losses = []
        for _client, sender, receiver, _d in flows:
            # Sender start time: first client enters coverage.
            start = COVERAGE_ENTRY_OFFSET_M / trajectories[0].speed_mps
            interval = sender.interval_s
            first_seq = max(0, int((t0 - start) / interval))
            last_seq = int((t1 - start) / interval)
            sent = last_seq - first_seq + 1
            got = sum(1 for _t, seq in receiver.deliveries
                      if first_seq <= seq <= last_seq)
            losses.append(max(0.0, 1.0 - got / max(sent, 1)))
        return losses

    return cached(f"fig18:{mode}", run)


def test_fig18_uplink_loss_rate(benchmark):
    def run_all():
        return {mode: uplink_losses(mode) for mode in ("wgtt", "baseline")}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for i in range(3):
        rows.append([
            f"client {i + 1}",
            f"{data['wgtt'][i]:.3f}",
            f"{data['baseline'][i]:.3f}",
        ])
    print_table(
        "Fig. 18: uplink UDP loss rate, 3 clients at 15 mph",
        ["client", "WGTT (multi-AP)", "Enhanced 802.11r (single AP)"],
        rows,
    )
    wgtt_mean = float(np.mean(data["wgtt"]))
    base_mean = float(np.mean(data["baseline"]))
    # Paper: multi-uplink loss stays below ~0.02; single path is far worse.
    assert wgtt_mean < 0.12
    assert base_mean > 1.5 * wgtt_mean
