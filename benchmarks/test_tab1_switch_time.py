"""Table 1: execution time of the stop/start/ack switching protocol.

The paper measures 17-21 ms mean (std 3-5 ms) across 50-90 Mb/s offered
loads, dominated by the kernel ioctl and driver-queue filtering.
"""

import numpy as np

from common import drive, print_table


def switch_durations(result):
    pending = {}
    durations = []
    for r in result.trace.records():
        if r.kind == "switch_initiated" and r["old"] is not None:
            pending[r["client"]] = r.time
        elif r.kind == "ap_switch" and r["client"] in pending:
            durations.append(r.time - pending.pop(r["client"]))
    return durations


def test_tab1_switch_execution_time(benchmark):
    rates = (30.0, 50.0, 70.0)

    def run_all():
        out = {}
        for rate in rates:
            result = drive("wgtt", 15.0, "udp", seed=11, udp_rate_mbps=rate)
            out[rate] = switch_durations(result)
        return out

    durations = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for rate in rates:
        d = np.array(durations[rate]) * 1000.0
        rows.append([f"{rate:.0f}", f"{d.mean():.1f}", f"{d.std():.1f}", len(d)])
    print_table(
        "Table 1: switching protocol execution time",
        ["offered (Mb/s)", "mean (ms)", "std (ms)", "n"],
        rows,
    )
    means = [np.mean(durations[r]) for r in rates]
    # Paper: 17-21 ms, flat across load.  Our stop-processing model is
    # calibrated to the same window.
    for mean in means:
        assert 0.012 < mean < 0.028
    # Flat: max/min within 50%.
    assert max(means) / min(means) < 1.5
