"""Robustness check: does WGTT's advantage survive shadowing?

The paper's road was relatively open; a rougher street (parked vans,
foliage) adds several dB of spatially-correlated shadowing.  WGTT should
keep winning -- its selection reacts to the *measured* channel, shadows
included -- while the baseline's fixed-threshold trigger misfires more.
"""

from repro.experiments import mean_throughput_mbps, run_single_drive
from repro.phy.channel import RadioParams

from common import cached, coverage_window, print_table


def run_shadowed(mode, sigma_db):
    def run():
        result = run_single_drive(
            mode=mode, speed_mph=15.0, traffic="udp", udp_rate_mbps=50.0,
            seed=67, radio_params=RadioParams(shadowing_sigma_db=sigma_db),
        )
        t0, t1 = coverage_window(15.0)
        return mean_throughput_mbps(result.deliveries, t0, t1)

    return cached(f"shadow:{mode}:{sigma_db}", run)


def test_ablation_shadowing_robustness(benchmark):
    sigmas = (0.0, 4.0)

    def run_all():
        return {
            (mode, s): run_shadowed(mode, s)
            for mode in ("wgtt", "baseline")
            for s in sigmas
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"{s:.0f} dB",
         f"{data[('wgtt', s)]:.2f}",
         f"{data[('baseline', s)]:.2f}",
         f"{data[('wgtt', s)] / max(data[('baseline', s)], 1e-6):.1f}x"]
        for s in sigmas
    ]
    print_table(
        "Robustness: shadowing sigma vs throughput (15 mph UDP, Mb/s)",
        ["shadowing", "WGTT", "Enhanced 802.11r", "gain"],
        rows,
    )
    for s in sigmas:
        assert data[("wgtt", s)] > data[("baseline", s)]
    # WGTT keeps the bulk of its throughput under 4 dB shadowing.
    assert data[("wgtt", 4.0)] > 0.5 * data[("wgtt", 0.0)]
