"""Resilience: controller death, compared across three recovery postures.

This is an extension experiment, not a paper figure: the WGTT controller
is the single point of failure the paper never exercises.  The same
15 mph / 20 Mb/s UDP drive is run three times with the controller
process crashing at t = 2.5 s:

* **failover** -- warm standby armed (checkpointed state, heartbeat
  failure detector): the standby takes over within a few heartbeats and
  resumes switching from the checkpoint;
* **degraded** -- no standby; APs fall back to autonomous serving until
  the controller cold-restarts 2 s later and reconciles;
* **none** -- no HA at all: downlink enters through the dead controller,
  so the client starves after the ring backlog drains.

Every faulted arm runs with the runtime invariant monitors armed
(no duplicate delivery, bounded reordering, index monotonicity, single
serving AP) -- recovery speed never buys correctness violations.

Results land in ``BENCH_resilience.json`` at the repo root with commit
metadata, mirroring the other BENCH artifacts.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.ha import HaParams
from repro.experiments import throughput_timeseries
from repro.faults import FaultScenario

from common import drive, fmt, print_table
from test_perf_phy import REPO_ROOT, bench_metadata

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_resilience.json")

SPEED_MPH = 15.0
UDP_RATE = 20.0
SEED = 7
CRASH_T = 2.5
RESTART_AFTER_S = 2.0
DURATION_S = 7.0

BIN_S = 0.25
#: Recovery = back to this fraction of the pre-crash mean, sustained.
RECOVERY_FRACTION = 0.5


def _ha_json(**kw) -> str:
    """Canonical HaParams JSON (scalar, so drives share the result cache)."""
    return json.dumps(HaParams(**kw).to_dict(), sort_keys=True,
                      separators=(",", ":"))


def _scenario(restart: bool) -> str:
    restart_after = RESTART_AFTER_S if restart else None
    return FaultScenario.single_controller_crash(
        at=CRASH_T, restart_after_s=restart_after
    ).to_json()


#: arm name -> run_single_drive overrides.
ARMS = {
    "failover": {"ha": _ha_json(), "fault_scenario": _scenario(restart=False)},
    "degraded": {"ha": _ha_json(standby=False),
                 "fault_scenario": _scenario(restart=True)},
    "none": {"fault_scenario": _scenario(restart=False)},
}


def arm_drive(name: str):
    return drive("wgtt", SPEED_MPH, "udp", seed=SEED, udp_rate_mbps=UDP_RATE,
                 duration_s=DURATION_S, check_invariants=True, **ARMS[name])


def resilience_metrics(result):
    """(pre_mbps, dip_mbps, recovery_s) around the scripted crash."""
    centres, mbps = throughput_timeseries(
        result.deliveries, CRASH_T - 2.0, result.duration_s, bin_s=BIN_S
    )
    pre = float(np.mean(mbps[centres < CRASH_T]))
    post = mbps[centres >= CRASH_T]
    post_centres = centres[centres >= CRASH_T]
    dip_window = post[: int(2.0 / BIN_S)]
    dip = float(dip_window.min()) if len(dip_window) else 0.0
    threshold = RECOVERY_FRACTION * pre
    recovery = float("inf")
    for i in range(len(post) - 1):
        if post[i] >= threshold and post[i + 1] >= threshold:
            recovery = max(float(post_centres[i] - BIN_S / 2.0 - CRASH_T), 0.0)
            break
    return pre, dip, recovery


def test_controller_failure_recovery_ladder(benchmark):
    results = benchmark.pedantic(
        lambda: {name: arm_drive(name) for name in ARMS},
        rounds=1, iterations=1,
    )
    metrics = {name: resilience_metrics(r) for name, r in results.items()}
    rows, bench_arms = [], {}
    for name, result in results.items():
        pre, dip, recovery = metrics[name]
        counters = result.net.resilience_counters()
        rows.append([name, fmt(pre), fmt(dip),
                     "inf" if recovery == float("inf") else fmt(recovery)])
        bench_arms[name] = {
            "pre_crash_mbps": round(pre, 3),
            "dip_mbps": round(dip, 3),
            "recovery_s": None if recovery == float("inf") else round(recovery, 3),
            "invariant_checks": counters.get("invariant_checks", 0),
            "invariant_violations": counters.get("invariant_violations", 0),
            "resilience": {k: v for k, v in sorted(counters.items()) if v},
        }
    print_table(
        f"Controller crashes at t={CRASH_T}s ({SPEED_MPH:.0f} mph, "
        f"{UDP_RATE:.0f} Mb/s UDP, seed {SEED})",
        ["HA posture", "pre-crash (Mb/s)", "dip (Mb/s)", "recovery (s)"],
        rows,
    )

    # Correctness first: the crash landed and every faulted arm passes
    # the armed invariant monitors.
    for name, result in results.items():
        assert result.net.trace.count("fault_controller_crash") == 1, name
        inv = result.net.invariants
        assert inv is not None and inv.checks > 0, name
        assert inv.ok, f"{name}: {inv.report()}"

    # The failover arm actually failed over (once, to the standby).
    failover_net = results["failover"].net
    assert failover_net.cluster.active is failover_net.standby
    assert failover_net.standby.takeovers == 1
    # The degraded arm actually degraded and re-subordinated.
    degraded_counters = results["degraded"].net.resilience_counters()
    assert degraded_counters["degraded_entries"] > 0
    assert degraded_counters["degraded_exits"] > 0

    # The recovery ladder: checkpointed failover beats waiting out a cold
    # restart behind degraded APs, which beats having no HA at all (the
    # client starves -- new downlink has nowhere to enter the network).
    fo, deg, none = (metrics[n][2] for n in ("failover", "degraded", "none"))
    assert all(metrics[n][0] > 5.0 for n in ARMS), "arms not loaded pre-crash"
    assert fo < 1.0, f"warm failover took {fo:.2f}s"
    assert fo < deg, f"failover ({fo:.2f}s) not faster than degraded ({deg:.2f}s)"
    assert deg >= RESTART_AFTER_S * 0.5, "degraded arm recovered before restart?"
    assert deg < none, "cold restart never beat controller-less free fall"
    assert none == float("inf"), "no-HA arm recovered without a controller"

    payload = {
        **bench_metadata(),
        "experiment": {
            "speed_mph": SPEED_MPH, "udp_rate_mbps": UDP_RATE, "seed": SEED,
            "crash_t_s": CRASH_T, "restart_after_s": RESTART_AFTER_S,
            "duration_s": DURATION_S, "bin_s": BIN_S,
            "recovery_fraction": RECOVERY_FRACTION,
        },
        "arms": bench_arms,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"(wrote {os.path.basename(BENCH_PATH)})")
