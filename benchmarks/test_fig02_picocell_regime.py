"""Fig. 2: the vehicular picocell regime.

Reproduces the paper's motivating observation: per-AP ESNR as a drive
progresses shows second-scale large fades plus millisecond fast fading,
and the identity of the best AP flips at millisecond timescales.
"""

import numpy as np

from repro.experiments import ExperimentConfig, build_network
from repro.mobility import LinearTrajectory, mph_to_mps

from common import print_table


def sample_regime(speed_mph=25.0, seed=42):
    net = build_network(ExperimentConfig(mode="wgtt", seed=seed))
    trajectory = LinearTrajectory.drive_through(net.road, speed_mph)
    client = net.add_client(trajectory)
    links = net.links_for_client(client)
    v = mph_to_mps(speed_mph)
    t0, t1 = 18.0 / v, 36.0 / v  # a mid-array stretch
    ts = np.arange(t0, t1, 1e-3)
    esnr = np.array([[link.esnr_db(float(t)) for link in links] for t in ts])
    return ts, esnr


def test_fig02_best_ap_changes_at_millisecond_timescales(benchmark):
    ts, esnr = benchmark.pedantic(sample_regime, rounds=1, iterations=1)
    best = esnr.argmax(axis=1)
    flips = int(np.sum(np.diff(best) != 0))
    span_ms = 1000.0 * (ts[-1] - ts[0])
    dwell_ms = span_ms / max(flips, 1)

    # Fast-fading swing of the strongest link.
    strongest = esnr.max(axis=1)
    swing_db = float(np.percentile(strongest, 95) - np.percentile(strongest, 5))

    print_table(
        "Fig. 2: vehicular picocell regime (25 mph)",
        ["metric", "value"],
        [
            ["observation window (ms)", f"{span_ms:.0f}"],
            ["best-AP changes", flips],
            ["mean best-AP dwell (ms)", f"{dwell_ms:.1f}"],
            ["ESNR 5-95% swing (dB)", f"{swing_db:.1f}"],
        ],
    )
    # Paper: the best AP changes every few milliseconds in overlap zones
    # and fading swings are ~10 dB.
    assert dwell_ms < 120.0
    assert flips >= 10
    assert swing_db > 4.0


def test_fig02_coverage_is_meter_scale(benchmark):
    def measure():
        net = build_network(ExperimentConfig(mode="wgtt", seed=1))
        trajectory = LinearTrajectory.drive_through(net.road, 25.0)
        client = net.add_client(trajectory)
        link = net.links_for_client(client)[3]
        v = mph_to_mps(25.0)
        xs = np.arange(10.0, 35.0, 0.25)
        snr = [link.mean_snr_db((x - trajectory.start_x) / v) for x in xs]
        return xs, np.array(snr)

    xs, snr = benchmark.pedantic(measure, rounds=1, iterations=1)
    usable = xs[snr > 10.0]
    width = usable.max() - usable.min()
    print(f"\nAP4 usable cell width (mean SNR > 10 dB): {width:.1f} m")
    assert 6.0 < width < 16.0  # meter-scale picocell, 6-10 m overlap
