"""Table 4: video rebuffer ratio at different speeds.

A 720p stream (1.5 s pre-buffer) plays during the transit.  The paper:
WGTT never rebuffers at any speed; Enhanced 802.11r stalls for 0.54-0.69
of the drive.
"""

from repro.apps.video import VideoParams, VideoStreamingSession
from repro.experiments import ExperimentConfig, attach_tcp_downlink, build_network
from repro.mobility import COVERAGE_ENTRY_OFFSET_M, LinearTrajectory, RoadLayout

from common import cached, fmt, print_table

SPEEDS = (5.0, 10.0, 15.0, 20.0)


def rebuffer_ratio(mode, speed_mph):
    def run():
        road = RoadLayout()
        net = build_network(ExperimentConfig(mode=mode, road=road, seed=41))
        trajectory = LinearTrajectory.drive_through(road, speed_mph)
        client = net.add_client(trajectory)
        sender, receiver = attach_tcp_downlink(net, client)
        session = VideoStreamingSession(net.sim, VideoParams())
        receiver.on_bytes = session.on_bytes
        start = max(0.05, (min(road.ap_x) - COVERAGE_ENTRY_OFFSET_M
                           - trajectory.start_x) / trajectory.speed_mps)
        net.sim.schedule(start, sender.start)
        duration = trajectory.transit_duration(road)
        net.run(until=duration)
        session.finish(duration)
        return session.rebuffer_ratio(duration - start)

    return cached(f"tab4:{mode}:{speed_mph}", run)


def test_tab4_video_rebuffer_ratio(benchmark):
    def run_all():
        return {
            (mode, s): rebuffer_ratio(mode, s)
            for mode in ("wgtt", "baseline")
            for s in SPEEDS
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [f"{s:.0f} mph",
         fmt(data[("wgtt", s)]),
         fmt(data[("baseline", s)])]
        for s in SPEEDS
    ]
    print_table(
        "Table 4: video rebuffer ratio",
        ["speed", "WGTT", "Enhanced 802.11r"],
        rows,
    )
    for s in SPEEDS:
        # Paper: WGTT plays smoothly (ratio 0) at every speed.
        assert data[("wgtt", s)] < 0.05
    # The baseline stalls for a large fraction of the drive at least at
    # the faster speeds.
    assert max(data[("baseline", s)] for s in SPEEDS) > 0.25
