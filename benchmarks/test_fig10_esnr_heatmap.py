"""Fig. 10: per-AP ESNR heatmap of the road.

Sweeps a probe across the road grid and reports each AP's coverage
footprint; adjacent footprints must overlap by 6-10 m as in the paper.
"""

import numpy as np

from repro.experiments import ExperimentConfig, build_network
from repro.mobility import StationaryTrajectory
from repro.phy.channel import Link

from common import print_table


def heatmap(seed=3):
    net = build_network(ExperimentConfig(mode="wgtt", seed=seed))
    xs = np.arange(-10.0, 63.0, 1.0)
    ys = (2.0, 5.5)  # the two lanes
    grids = []
    for i, ap in enumerate(net.aps):
        grid = np.zeros((len(ys), len(xs)))
        for yi, y in enumerate(ys):
            for xi, x in enumerate(xs):
                client = StationaryTrajectory((float(x), float(y), 1.5))
                link = Link(
                    ap_position=net.road.ap_position(i),
                    ap_antenna=ap.radio.antenna,
                    client_position_fn=client.position,
                    speed_mps=0.0,
                    rng=np.random.default_rng(0),
                )
                grid[yi, xi] = link.mean_snr_db(0.0)
        grids.append(grid)
    return xs, ys, grids, net


def test_fig10_heatmap_footprints(benchmark):
    xs, ys, grids, net = benchmark.pedantic(heatmap, rounds=1, iterations=1)
    rows = []
    spans = []
    for i, grid in enumerate(grids):
        usable = xs[grid.max(axis=0) > 8.0]
        lo, hi = float(usable.min()), float(usable.max())
        spans.append((lo, hi))
        rows.append([f"AP{i + 1}", f"{net.road.ap_x[i]:.1f}", f"{lo:.0f}..{hi:.0f}",
                     f"{hi - lo:.0f}"])
    print_table(
        "Fig. 10: per-AP coverage along the road (mean SNR > 8 dB)",
        ["AP", "x (m)", "footprint (m)", "width (m)"],
        rows,
    )
    overlaps = [spans[i][1] - spans[i + 1][0] for i in range(len(spans) - 1)]
    print(f"adjacent-AP overlaps: {[f'{o:.1f}' for o in overlaps]} m")
    # Footprints centred on their AP, overlapping 4-12 m (paper: 6-10 m).
    for i, (lo, hi) in enumerate(spans):
        assert lo < net.road.ap_x[i] < hi
    for overlap in overlaps:
        assert 3.0 < overlap < 14.0
