"""Ablations beyond the paper: isolate each WGTT design choice.

* Block-ACK forwarding on/off (section 3.2.1's contribution).
* Cross-AP queue handoff via start(c, k) vs naive switching.
* Selection metric: median (the paper) vs mean vs max ESNR.
"""

import numpy as np

from repro.core.ap import ApParams
from repro.core.controller import ControllerParams
from repro.experiments import mean_throughput_mbps, run_single_drive

from common import cached, coverage_window, print_table


def run_tcp(label, **overrides):
    def run():
        result = run_single_drive(
            mode="wgtt", speed_mph=15.0, traffic="tcp", seed=53, **overrides
        )
        t0, t1 = coverage_window(15.0)
        return mean_throughput_mbps(result.deliveries, t0, t1), result

    return cached(f"ablation:{label}", run)


def test_ablation_block_ack_forwarding(benchmark):
    def run_all():
        on, res_on = run_tcp("ba_on")
        off, res_off = run_tcp("ba_off", ap_params=ApParams(ba_forwarding=False))
        return on, off, res_on, res_off

    on, off, res_on, res_off = benchmark.pedantic(run_all, rounds=1, iterations=1)
    fwd = res_on.trace.count("ba_forward_applied")
    print_table(
        "Ablation: block-ACK forwarding",
        ["variant", "TCP throughput (Mb/s)", "BAs recovered via backhaul"],
        [["forwarding ON", f"{on:.2f}", fwd],
         ["forwarding OFF", f"{off:.2f}", 0]],
    )
    assert fwd > 0  # the mechanism actually engages
    assert res_off.trace.count("ba_forward_applied") == 0
    # Forwarding never hurts; expect a measurable win at cell edges.
    assert on >= 0.9 * off


def test_ablation_selection_metric(benchmark):
    metrics = ("median", "mean", "max")

    def run_all():
        return {
            m: run_tcp(f"metric_{m}",
                       controller_params=ControllerParams(selection_metric=m))[0]
            for m in metrics
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Ablation: AP selection metric",
        ["metric", "TCP throughput (Mb/s)"],
        [[m, f"{data[m]:.2f}"] for m in metrics],
    )
    # All three work (they share the window); median -- the paper's choice
    # -- must be competitive with the best.
    assert data["median"] >= 0.7 * max(data.values())


def test_ablation_window_extremes(benchmark):
    def run_all():
        return {
            w: run_tcp(f"window_{w}",
                       controller_params=ControllerParams(selection_window_s=w))[0]
            for w in (0.002, 0.010, 0.200)
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Ablation: selection window size",
        ["window (s)", "TCP throughput (Mb/s)"],
        [[w, f"{data[w]:.2f}"] for w in sorted(data)],
    )
    # The paper's 10 ms must beat a very stale 200 ms window or at least
    # match it within noise; and nothing collapses.
    assert data[0.010] >= 0.75 * max(data.values())
    assert min(data.values()) > 2.0
