"""Shared helpers for the per-figure/table benchmark harness.

Every benchmark reproduces one table or figure from the paper's
evaluation: it runs a (scaled-down) version of the experiment, prints the
same rows/series the paper reports, and asserts the qualitative shape
(who wins, roughly by how much).  Absolute numbers differ from the
testbed -- see EXPERIMENTS.md for the side-by-side record.

Results are cached per pytest session so benchmarks that share a drive
(e.g. Fig. 14 and Fig. 16 both use the 15 mph WGTT TCP drive) only pay
for it once.
"""

from __future__ import annotations

import atexit
import os
from typing import Callable, Dict, Optional

from repro.experiments import mean_throughput_mbps, run_single_drive
from repro.mobility import (
    COVERAGE_ENTRY_OFFSET_M,
    DEFAULT_SPAN_M,
    LEAD_IN_M,
    mph_to_mps,
)
from repro.orchestration import ColumnarStore, JobSpec, ResultCache

_CACHE: Dict[str, object] = {}

#: Persistent cross-session cache of drive summaries, shared with the CLI
#: sweep runner (honours REPRO_CACHE_DIR / REPRO_CACHE_DISABLE).
_RESULT_CACHE: Optional[ResultCache] = None

#: Optional columnar sidecar: with REPRO_STORE_DIR set, every summary a
#: benchmark session publishes also lands in packed .npz shards, so a CI
#: run's drives are queryable as one columnar study afterwards.
_SUMMARY_STORE: Optional[ColumnarStore] = None

#: Offered UDP load for bulk tests (the paper uses 50-90 Mb/s).
UDP_RATE_MBPS = 50.0

#: Default seed; benches that average use seeds SEEDS.
SEED = 7
SEEDS = (7, 8)


def cached(key: str, fn: Callable[[], object]):
    """Memoise an expensive experiment for the session."""
    if key not in _CACHE:
        _CACHE[key] = fn()
    return _CACHE[key]


def coverage_window(speed_mph: float, span_m: float = DEFAULT_SPAN_M,
                    lead_in_m: float = LEAD_IN_M):
    """Measurement window while the client is inside the AP array."""
    v = mph_to_mps(speed_mph)
    return lead_in_m / v, (span_m + lead_in_m) / v


def result_cache() -> ResultCache:
    """The shared persistent summary cache (created on first use)."""
    global _RESULT_CACHE
    if _RESULT_CACHE is None:
        _RESULT_CACHE = ResultCache.from_env()
    return _RESULT_CACHE


def summary_store() -> Optional[ColumnarStore]:
    """The columnar sidecar store, or None when REPRO_STORE_DIR is unset.

    The partial tail shard flushes at interpreter exit, so a pytest
    session's drives land as one queryable shard set.
    """
    global _SUMMARY_STORE
    if _SUMMARY_STORE is None:
        root = os.environ.get("REPRO_STORE_DIR")
        if not root:
            return None
        _SUMMARY_STORE = ColumnarStore(root, shard_size=256)
        atexit.register(_SUMMARY_STORE.flush)
    return _SUMMARY_STORE


def _normalize_drive_kwargs(kw: dict) -> tuple:
    """Hoist ``udp_rate_mbps`` so equivalent calls share one cache key.

    Returns ``(udp_rate_mbps, rest)`` without mutating the caller's dict:
    ``drive(..., udp_rate_mbps=50.0)`` and a bare ``drive(...)`` are the
    same experiment and must hit the same entry.
    """
    rest = dict(kw)
    return rest.pop("udp_rate_mbps", UDP_RATE_MBPS), rest


def _job_for(mode: str, speed_mph: float, traffic: str, seed: int,
             udp_rate: float, rest: dict) -> Optional[JobSpec]:
    """A JobSpec mirror of a drive() call, or None if not expressible.

    Only calls made entirely of scalars map onto the persistent cache;
    rich objects (roads, configs, trajectories) stay session-local.
    """
    overrides = {k: v for k, v in rest.items()
                 if k not in ("duration_s", "warmup_s", "fault_scenario",
                              "city")}
    if any(not isinstance(v, (int, float, str, bool, type(None)))
           for v in overrides.values()):
        return None
    fault = rest.get("fault_scenario")
    if fault is not None and not isinstance(fault, str):
        return None  # only canonical JSON maps onto the persistent cache
    city = rest.get("city")
    if city is not None and not isinstance(city, str):
        return None  # same contract: canonical JSON only
    try:
        return JobSpec(
            mode=mode, speed_mph=float(speed_mph), traffic=traffic,
            udp_rate_mbps=float(udp_rate), seed=int(seed),
            duration_s=rest.get("duration_s"),
            warmup_s=rest.get("warmup_s", 0.5),
            fault_scenario=fault,
            city=city,
            overrides=tuple(sorted(overrides.items())),
        )
    except (TypeError, ValueError):
        return None


def drive(mode: str, speed_mph: float, traffic: str, seed: int = SEED, **kw):
    """A cached standard drive."""
    udp_rate, rest = _normalize_drive_kwargs(kw)
    key = (f"drive:{mode}:{speed_mph}:{traffic}:{seed}:{udp_rate}:"
           f"{sorted(rest.items())}")

    def _run():
        result = run_single_drive(
            mode=mode, speed_mph=speed_mph, traffic=traffic,
            udp_rate_mbps=udp_rate, seed=seed, **rest,
        )
        # Publish the summary so later sweeps/benchmark sessions skip
        # this simulation entirely.
        job = _job_for(mode, speed_mph, traffic, seed, udp_rate, rest)
        store = summary_store()
        if job is not None and (result_cache().enabled or store is not None):
            summary = result.summarize(
                mode=mode, speed_mph=speed_mph, traffic=traffic,
                udp_rate_mbps=udp_rate, seed=seed, job_key=job.key(),
            )
            if result_cache().enabled:
                result_cache().put(job, summary)
            if store is not None:
                store.append(summary)
        return result

    return cached(key, _run)


def city_drive(city, traffic: str = "udp", seed: int = SEED, **kw):
    """A cached city fleet drive; ``city`` is a CityConfig, dict, or JSON.

    The spec is canonicalised before keying, so every benchmark (and CLI
    sweep) that describes the same grid shares one persistent-cache entry
    under the same ``city=<hash>`` key component.
    """
    from repro.city import coerce_city

    city_json = coerce_city(city).to_json()
    return drive("wgtt", 0.0, traffic, seed=seed, city=city_json, **kw)


def drive_throughput(mode: str, speed_mph: float, traffic: str, seed: int = SEED, **kw) -> float:
    udp_rate, rest = _normalize_drive_kwargs(kw)
    if speed_mph > 0:
        # Serve straight from the persistent cache when a previous
        # session (or a CLI sweep) already ran this exact drive.  The
        # summary's coverage window is the same 15 m lead-in convention
        # as coverage_window(), so the numbers are identical.
        key = (f"drive:{mode}:{speed_mph}:{traffic}:{seed}:{udp_rate}:"
               f"{sorted(rest.items())}")
        if key not in _CACHE and rest.get("duration_s") is None:
            job = _job_for(mode, speed_mph, traffic, seed, udp_rate, rest)
            if job is not None:
                summary = result_cache().get(job)
                if summary is not None:
                    return summary.coverage_throughput_mbps
    result = drive(mode, speed_mph, traffic, seed=seed, **kw)
    if speed_mph <= 0:
        return mean_throughput_mbps(result.deliveries, 0.5, result.duration_s)
    t0, t1 = coverage_window(speed_mph)
    return mean_throughput_mbps(result.deliveries, t0, t1)


def print_table(title: str, headers, rows) -> None:
    """Render a paper-style table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(f"{r[i]}") for r in rows), default=0))
              for i, h in enumerate(headers)]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(f"{cell}".rjust(w) for cell, w in zip(row, widths)))


def fmt(value, digits=2):
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"


def multi_client_drive(
    mode: str,
    trajectories,
    traffic: str = "udp",
    udp_rate_mbps: float = UDP_RATE_MBPS,
    seed: int = SEED,
    uplink: bool = False,
    duration_s=None,
    **config_overrides,
):
    """Run several clients simultaneously; returns (net, flows).

    ``flows`` is a list of (client, sender, receiver, deliveries_fn).
    """
    from repro.experiments import (
        ExperimentConfig,
        attach_tcp_downlink,
        attach_udp_downlink,
        attach_udp_uplink,
        build_network,
        tcp_deliveries,
        udp_deliveries,
    )
    from repro.mobility import RoadLayout

    road = config_overrides.pop("road", None) or RoadLayout()
    net = build_network(ExperimentConfig(mode=mode, road=road, seed=seed,
                                         **config_overrides))
    flows = []
    max_duration = 0.0
    for trajectory in trajectories:
        client = net.add_client(trajectory)
        if traffic == "tcp":
            sender, receiver = attach_tcp_downlink(net, client)
            deliveries = (lambda rx: (lambda: tcp_deliveries(rx)))(receiver)
        elif uplink:
            sender, receiver = attach_udp_uplink(net, client, udp_rate_mbps)
            deliveries = (
                lambda rx, tx: (lambda: udp_deliveries(rx, tx.packet_bytes))
            )(receiver, sender)
        else:
            sender, receiver = attach_udp_downlink(net, client, udp_rate_mbps)
            deliveries = (
                lambda rx, tx: (lambda: udp_deliveries(rx, tx.packet_bytes))
            )(receiver, sender)
        if trajectory.speed_mps > 0:
            start = max(0.05, COVERAGE_ENTRY_OFFSET_M / trajectory.speed_mps)
            max_duration = max(max_duration, trajectory.transit_duration(road))
        else:
            start = 0.05
            max_duration = max(max_duration, duration_s or 10.0)
        net.sim.schedule(start, sender.start)
        flows.append((client, sender, receiver, deliveries))
    net.run(until=duration_s or max_duration)
    return net, flows
