"""Figs. 19/20: two-car scenarios -- following, parallel, opposing.

The paper finds opposing-direction driving fastest (the cars are far
apart most of the time, minimal contention) and parallel driving slowest
(the two clients carrier-sense each other for the whole transit).
"""

import numpy as np

from repro.experiments import mean_throughput_mbps
from repro.mobility import SCENARIOS, RoadLayout

from common import cached, coverage_window, multi_client_drive, print_table


def scenario_throughput(name, mode="wgtt", traffic="udp"):
    def run():
        road = RoadLayout()
        trajectories = SCENARIOS[name](road, 15.0)
        net, flows = multi_client_drive(
            mode, trajectories, traffic=traffic, udp_rate_mbps=30.0, seed=19
        )
        t0, t1 = coverage_window(15.0)
        return [
            mean_throughput_mbps(deliveries(), t0, t1)
            for _c, _s, _r, deliveries in flows
        ]

    return cached(f"fig20:{name}:{mode}:{traffic}", run)


def test_fig20_scenarios_udp(benchmark):
    names = ("following", "parallel", "opposing")

    def run_all():
        out = {}
        for name in names:
            for mode in ("wgtt", "baseline"):
                out[(name, mode)] = scenario_throughput(name, mode)
        return out

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name in names:
        w = float(np.mean(data[(name, "wgtt")]))
        b = float(np.mean(data[(name, "baseline")]))
        rows.append([name, f"{w:.2f}", f"{b:.2f}"])
    print_table(
        "Fig. 20: mean per-client UDP throughput by scenario (Mb/s), 15 mph",
        ["scenario", "WGTT", "Enhanced 802.11r"],
        rows,
    )
    wgtt = {name: float(np.mean(data[(name, "wgtt")])) for name in names}
    # Paper ordering: opposing best, parallel worst.
    assert wgtt["opposing"] > wgtt["parallel"]
    # WGTT beats the baseline in every scenario.
    for name in names:
        assert np.mean(data[(name, "wgtt")]) > np.mean(data[(name, "baseline")])
