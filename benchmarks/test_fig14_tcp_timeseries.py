"""Fig. 14: TCP throughput and serving-AP timeseries during a 15 mph drive.

WGTT switches APs several times a second and keeps throughput up;
the baseline's throughput collapses between cells and TCP hits RTO.
"""

import numpy as np

from repro.experiments import throughput_timeseries

from common import coverage_window, drive, print_table


def test_fig14_tcp_timeseries(benchmark):
    def run_both():
        return (
            drive("wgtt", 15.0, "tcp"),
            drive("baseline", 15.0, "tcp"),
        )

    wgtt, base = benchmark.pedantic(run_both, rounds=1, iterations=1)
    t0, t1 = coverage_window(15.0)
    rows = []
    series = {}
    for name, result in (("WGTT", wgtt), ("Enhanced 802.11r", base)):
        ts, mbps = throughput_timeseries(result.deliveries, t0, t1, bin_s=0.5)
        series[name] = mbps
        switches_per_s = result.timeline.switch_count / (t1 - t0)
        dead = float(np.mean(mbps < 0.25))
        rows.append([name, f"{np.mean(mbps):.2f}", f"{switches_per_s:.1f}",
                     f"{100 * dead:.0f}%"])
    print_table(
        "Fig. 14: TCP during a 15 mph drive",
        ["system", "mean (Mb/s)", "switches/s", "dead bins"],
        rows,
    )
    print("WGTT     series:", " ".join(f"{v:4.1f}" for v in series["WGTT"]))
    print("baseline series:", " ".join(f"{v:4.1f}" for v in series["Enhanced 802.11r"]))

    # WGTT switches frequently (paper: ~5/s) and has little dead time.
    assert wgtt.timeline.switch_count / (t1 - t0) > 2.0
    assert float(np.mean(series["WGTT"] < 0.25)) < 0.35
    # The baseline shows real dead bins (the between-cell collapses) or
    # outright TCP timeouts.
    base_dead = float(np.mean(series["Enhanced 802.11r"] < 0.25))
    assert base_dead > 0.2 or base.sender.timeouts >= 2
    # And WGTT's mean beats the baseline's.
    assert np.mean(series["WGTT"]) > np.mean(series["Enhanced 802.11r"])
